"""CLI for the workload engine: generate, record, replay, drive.

Modes (combine freely):

* dry run (default) — synthesize ops and print a shape summary, no
  server needed: ``python -m repro.tools.loadgen --preset ycsb-b
  --seed 7 --ops 10000``
* record — write a replayable trace file: ``--record trace.lg``
* replay — read batches from a trace instead of synthesizing:
  ``--replay trace.lg``
* drive — send the stream to a live server and print a JSON report:
  ``--addr 127.0.0.1:6379`` (repeat ``--addr`` for a cluster; the
  slot-routing client is used automatically when more than one address
  is given or ``--cluster`` is passed).

Everything is deterministic: same ``--preset``/overrides and ``--seed``
produce byte-identical operation streams (``--digest`` prints the
SHA-256 receipt over the first 2048 encoded ops).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.driver import drive
from repro.loadgen.engine import OperationStream, stream_digest
from repro.loadgen.spec import PRESETS, preset
from repro.loadgen.trace import read_trace, record_trace, trace_spec
from repro.tools.metrics_dump import parse_addr


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.loadgen",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--preset",
        default="ycsb-b",
        help=f"workload preset ({', '.join(sorted(PRESETS))})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--ops", type=int, default=10_000,
        help="operation budget for dry runs / recording / driving",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="time bound (seconds) when driving a live server",
    )
    parser.add_argument(
        "--keyspace", type=int, default=None,
        help="override the preset's key space size",
    )
    parser.add_argument(
        "--hash-tags", action="store_true",
        help="group keys in {tags} so multi-key runs stay on one slot",
    )
    parser.add_argument(
        "--record", metavar="PATH",
        help="write the generated stream to a replayable trace file",
    )
    parser.add_argument(
        "--replay", metavar="PATH",
        help="take batches from a trace file instead of synthesizing",
    )
    parser.add_argument(
        "--addr", action="append", metavar="HOST:PORT",
        help="drive a live server (repeat for cluster startup nodes)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="use the slot-routing cluster client even for one --addr",
    )
    parser.add_argument(
        "--prefill", action="store_true",
        help="run the YCSB load phase (SET every key once) before driving",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print the stream's determinism digest and exit",
    )
    parser.add_argument(
        "--list-presets", action="store_true",
        help="print the preset table and exit",
    )
    return parser


def _list_presets() -> None:
    for name in sorted(PRESETS):
        spec = PRESETS[name]
        mix = " ".join(f"{verb}:{weight:g}" for verb, weight in spec.mix)
        print(
            f"{name:12s} keys={spec.keyspace:<6d} dist={spec.key_dist:<17s}"
            f" values={spec.value_dist:<9s} mix=[{mix}]"
        )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_presets:
        _list_presets()
        return 0

    overrides: dict = {}
    if args.keyspace is not None:
        overrides["keyspace"] = args.keyspace
    if args.hash_tags:
        overrides["hash_tags"] = True

    if args.replay:
        meta, batches = read_trace(args.replay)
        spec = trace_spec(meta)
        seed = meta["seed"]
        batch_source = iter(batches)
        op_budget = meta["ops"]
    else:
        spec = preset(args.preset, **overrides)
        seed = args.seed
        stream = OperationStream(spec, seed)
        batch_source = stream.batches()
        op_budget = args.ops

    if args.digest:
        print(stream_digest(spec, seed))
        return 0

    if args.record:
        stream = OperationStream(spec, seed)  # fresh: record from op 0
        # batch count that covers the op budget at the *minimum* depth
        budget, batches_needed = 0, 0
        probe = OperationStream(spec, seed)
        for batch in probe.batches():
            budget += len(batch)
            batches_needed += 1
            if budget >= op_budget:
                break
        meta = record_trace(args.record, stream, batches=batches_needed)
        print(
            f"recorded {meta['ops']} ops / {meta['batches']} batches of "
            f"{spec.name!r} (seed {seed}) -> {args.record}"
        )
        return 0

    if args.addr:
        addresses = [parse_addr(spec_str) for spec_str in args.addr]
        if args.cluster or len(addresses) > 1:
            from repro.kvstore.cluster import ClusterKvClient

            client = ClusterKvClient(addresses)
        else:
            from repro.kvstore.tcp import TcpKvClient

            client = TcpKvClient(addresses[0])
        try:
            if args.prefill and not args.replay:
                # the prefill's RNG draws are part of the stream's
                # deterministic history: measured batches continue the
                # same OperationStream that loaded the keys
                prefill_stream = OperationStream(spec, seed)
                drive(
                    client,
                    prefill_stream.prefill_batches(),
                    max_ops=spec.keyspace,
                )
                batch_source = prefill_stream.batches()
            report = drive(
                client,
                batch_source,
                max_ops=None if args.duration else op_budget,
                duration=args.duration,
            )
        finally:
            client.close()
        document = {
            "preset": spec.name,
            "seed": seed,
            "source": args.replay or "generated",
            "report": report.as_dict(),
        }
        print(json.dumps(document, indent=2))
        return 0

    # dry run: synthesize and summarize without touching a server
    ops = 0
    batches = 0
    verbs: dict[str, int] = {}
    value_bytes = 0
    depth_hist: dict[int, int] = {}
    for batch in batch_source:
        batches += 1
        depth_hist[len(batch)] = depth_hist.get(len(batch), 0) + 1
        for op in batch:
            ops += 1
            verb = op[0].decode().lower()
            verbs[verb] = verbs.get(verb, 0) + 1
            if verb == "set":
                value_bytes += len(op[2])
            elif verb == "mset":
                value_bytes += sum(len(part) for part in op[2::2])
        if ops >= op_budget:
            break
    print(json.dumps({
        "preset": spec.name,
        "seed": seed,
        "ops": ops,
        "batches": batches,
        "verbs": dict(sorted(verbs.items())),
        "value_bytes_written": value_bytes,
        "depth_histogram": {
            str(depth): count
            for depth, count in sorted(depth_hist.items())
        },
        "digest": stream_digest(spec, seed),
    }, indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
