"""Launch and supervise a multi-process hash-slot cluster.

One command turns this machine into the paper's Figure-1 topology with
the serving plane as the workload: N ``kv_server`` shard processes,
each owning a contiguous range of the 16384 hash slots, all registered
with a single machine-wide Soft Memory Daemon hosted by the supervisor.
Shards that crash or stop answering PING are restarted on the same
port with the same data dir.

Prints one machine-readable line per shard once it is serving::

    SHARD <index> <host> <port>

then a final ``CLUSTER READY <n>`` line, and keeps supervising until
SIGTERM/SIGINT, which fans a graceful shutdown out to every shard.

Usage::

    python -m repro.tools.kv_cluster --shards 2
    python -m repro.tools.kv_cluster --shards 4 --dir ./data --capacity 8192
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.kvstore.cluster.supervisor import ClusterSupervisor, free_ports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.kv_cluster",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="number of shard processes"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port-base",
        type=int,
        default=None,
        help="first shard port (consecutive); default: free ports",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=4096,
        help="machine-wide soft capacity (pages) shared by all shards",
    )
    parser.add_argument(
        "--startup-budget",
        type=int,
        default=16,
        help="pages each shard is granted at registration",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="data root; each shard persists under <dir>/shard-<i>",
    )
    parser.add_argument(
        "--no-restart",
        action="store_true",
        help="do not restart crashed/unresponsive shards",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        help="seconds between PING health checks",
    )
    args = parser.parse_args(argv)

    if args.port_base is not None:
        ports = list(range(args.port_base, args.port_base + args.shards))
    else:
        ports = free_ports(args.host, args.shards)

    supervisor = ClusterSupervisor(
        args.shards,
        host=args.host,
        ports=ports,
        soft_capacity_pages=args.capacity,
        startup_budget_pages=args.startup_budget,
        data_dir=args.dir,
        health_interval=args.health_interval,
        restart=not args.no_restart,
    )

    done = threading.Event()

    def request_stop(signum=None, frame=None) -> None:
        done.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)

    try:
        supervisor.start()
    except RuntimeError as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr)
        supervisor.stop()
        return 1

    for shard in supervisor.shards:
        host, port = shard.address
        print(f"SHARD {shard.index} {host} {port}", flush=True)
    print(f"CLUSTER READY {args.shards}", flush=True)

    done.wait()
    supervisor.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
