"""Render footprint timelines as text (Figure 2 in a terminal).

Takes the ``footprint`` samples a :class:`~repro.sim.machine.Machine`
records and produces an aligned textual chart: one column per process,
one row per sample, with a proportional bar so the step-down/step-up
shape of a reclamation is visible at a glance.
"""

from __future__ import annotations

from repro.util.eventlog import EventLog
from repro.util.units import MIB

BAR_WIDTH = 24


def render_timeline(
    log: EventLog,
    names: list[str],
    *,
    kind: str = "footprint",
) -> str:
    """Text chart of each named series over time.

    Only events of ``kind`` contribute; a process missing from a sample
    renders as zero (it had exited or not yet spawned).
    """
    samples = log.of_kind(kind)
    if not samples:
        return "(no samples)"
    peak = max(
        (event.detail.get(name, 0) for event in samples for name in names),
        default=0,
    )
    peak = max(peak, 1)
    lines = []
    header = f"{'t (s)':>9}"
    for name in names:
        header += f"  {name:<{BAR_WIDTH}} {'MiB':>7}"
    lines.append(header)
    for event in samples:
        row = f"{event.time:>9.2f}"
        for name in names:
            value = event.detail.get(name, 0)
            filled = round(BAR_WIDTH * value / peak)
            bar = "#" * filled + "." * (BAR_WIDTH - filled)
            row += f"  {bar} {value / MIB:>7.2f}"
        lines.append(row)
    return "\n".join(lines)
