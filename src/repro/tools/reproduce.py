"""One-command reproduction driver.

Runs the full reproduction pipeline — test suite, every benchmark
(printing the paper-vs-measured tables), and the example scripts —
and prints a final scoreboard.

Usage::

    python -m repro.tools.reproduce            # everything
    python -m repro.tools.reproduce --quick    # tests + benches only
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import time


def _run(label: str, argv: list[str]) -> tuple[str, bool, float]:
    print(f"\n{'=' * 72}\n== {label}\n{'=' * 72}", flush=True)
    start = time.monotonic()
    result = subprocess.run(argv)
    elapsed = time.monotonic() - start
    return label, result.returncode == 0, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the example scripts",
    )
    args = parser.parse_args(argv)

    root = pathlib.Path(__file__).resolve().parents[3]
    steps = [
        ("test suite", [sys.executable, "-m", "pytest", "tests/", "-q"]),
        ("benchmarks (paper tables)", [
            sys.executable, "-m", "pytest", "benchmarks/",
            "--benchmark-only", "-q", "-s",
        ]),
    ]
    if not args.quick:
        for example in sorted((root / "examples").glob("*.py")):
            steps.append(
                (f"example: {example.name}",
                 [sys.executable, str(example)])
            )

    results = [_run(label, argv) for label, argv in steps]

    print(f"\n{'=' * 72}\n== reproduction scoreboard\n{'=' * 72}")
    failed = 0
    for label, ok, elapsed in results:
        status = "PASS" if ok else "FAIL"
        if not ok:
            failed += 1
        print(f"  {status}  {elapsed:7.1f}s  {label}")
    print(f"{'=' * 72}")
    if failed:
        print(f"{failed} step(s) failed")
        return 1
    print("every reproduction step passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
