"""Run a standalone kvstore server process (the crash-test target).

Boots a :class:`~repro.kvstore.store.DataStore` over a locked SMA,
optionally attaches the durability plane (``--dir`` enables it, with
recovery on startup), serves RESP over TCP, and shuts down gracefully
on SIGTERM/SIGINT: stop accepting, flush the append-only log with a
final fsync, write a closing snapshot, exit 0. A second signal while
shutdown is running is a no-op — never a crash or a double flush.

The same entry point runs one **cluster shard**: ``--cluster-shard I``
with ``--cluster-nodes host:port,...`` attaches the hash-slot topology
(this process serves node I's slot range and answers ``MOVED`` for the
rest), and ``--smd-socket PATH`` registers the process's SMA with the
machine-wide Soft Memory Daemon over the RPC plane instead of running
budget-free — which is how N shard processes come to share one soft
capacity ledger. ``repro.tools.kv_cluster`` spawns exactly this shape.

The process prints one machine-readable line once it is accepting::

    READY <host> <port>

so harnesses (the kill -9 crash-recovery loop, benchmarks) can spawn it
with ``--port 0`` and discover the bound port without racing startup.

Usage::

    python -m repro.tools.kv_server --dir /var/lib/kv --appendfsync always
    python -m repro.tools.kv_server --dir ./data --appendonly no  # RDB-ish
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.core.locking import LockedSoftMemoryAllocator
from repro.kvstore.persist.aof import FSYNC_POLICIES
from repro.kvstore.persist.engine import Persistence, PersistenceConfig
from repro.kvstore.store import DataStore, StoreConfig
from repro.kvstore.tcp import TcpKvServer
from repro.kvstore.tier import TierConfig


def build_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: str | None = None,
    appendonly: bool = True,
    appendfsync: str = "everysec",
    threaded: bool = False,
    sma_pages: int | None = None,
    smd_socket: str | None = None,
    cluster_shard: int | None = None,
    cluster_nodes: str | None = None,
    tier: bool = True,
    replicaof: str | None = None,
    repl_backlog: int | None = None,
    name: str = "kv-server",
):
    """Construct (store, persistence-or-None, unstarted server).

    Importable so tests can assemble the exact process shape the CLI
    runs without spawning a subprocess.

    ``smd_socket`` registers the SMA with an out-of-process daemon over
    the RPC plane; the live :class:`~repro.rpc.agent.SmaAgent` is
    stashed on ``store.smd_agent`` so the shutdown path can close it
    (forfeiting the budget back to the machine-wide ledger).
    ``cluster_shard``/``cluster_nodes`` attach the hash-slot topology;
    the node's own host:port from the table overrides ``host``/``port``.
    ``replicaof`` ("host:port") boots the process as a read-only
    replica: after local recovery it dials the master, full-syncs (or
    partial-resyncs from the backlog), and applies the stream through
    its own SMA budget. Requires the event-loop server.
    """
    if replicaof is not None and threaded:
        raise ValueError("--replicaof requires the event-loop server")
    if cluster_shard is not None:
        if not cluster_nodes:
            raise ValueError("--cluster-shard requires --cluster-nodes")
        from repro.kvstore.cluster.state import ClusterState

        addresses = []
        for spec in cluster_nodes.split(","):
            node_host, _, node_port = spec.strip().rpartition(":")
            addresses.append((node_host, int(node_port)))
        cluster_state = ClusterState(cluster_shard, addresses)
        host, port = addresses[cluster_shard]
        name = f"{name}-shard{cluster_shard}"
    else:
        cluster_state = None

    sma = LockedSoftMemoryAllocator(name=name)
    agent = None
    if smd_socket is not None:
        # the machine-wide budget: this process's SMA becomes one
        # tenant of the single daemon all shards share
        from repro.rpc.agent import SmaAgent

        agent = SmaAgent.connect(smd_socket, sma)
    elif sma_pages is not None:
        # a real budget: an in-process daemon with finite capacity, so
        # over-budget writes are denied (and replay re-admission gated)
        from repro.daemon.smd import SoftMemoryDaemon

        SoftMemoryDaemon(soft_capacity_pages=sma_pages).register(sma)
    # second-chance tier: victims of reclamation demote to a compressed
    # form before a later wave truly drops them (on by default; each
    # cluster shard runs its own tier over the shared SMD budget)
    store = DataStore(sma, StoreConfig(tier=TierConfig(enabled=tier)))
    store.smd_agent = agent
    if agent is not None:
        from repro.obs.plane import bind_agent

        bind_agent(store.obs.registry, agent)
    if cluster_state is not None:
        store.attach_cluster(cluster_state)
    persistence = None
    if data_dir is not None:
        persistence = Persistence(
            PersistenceConfig(
                dir=data_dir,
                appendonly=appendonly,
                appendfsync=appendfsync,
            )
        )
        store.attach_persistence(persistence)  # recovery happens here
    options: dict = {}
    if repl_backlog is not None:
        options["repl_backlog"] = repl_backlog
    server = TcpKvServer(store, host, port, threaded=threaded, **options)
    if replicaof is not None:
        master_host, _, master_port = replicaof.rpartition(":")
        if not master_host or not master_port.isdigit():
            raise ValueError("--replicaof wants HOST:PORT")
        # engaged before start(): no connections exist yet, the link
        # dials as soon as the thread spins up
        server.replicaof(master_host, int(master_port))
    return store, persistence, server


class GracefulShutdown:
    """One-shot shutdown: signal-safe to request, idempotent to run."""

    def __init__(self, server, persistence, agent=None) -> None:
        self._server = server
        self._persistence = persistence
        self._agent = agent
        self._requested = threading.Event()
        self._done = False
        self._lock = threading.Lock()

    def request(self, signum=None, frame=None) -> None:
        """Signal-handler shape; only flips an event, never does I/O."""
        self._requested.set()

    def wait(self) -> None:
        self._requested.wait()

    def run(self) -> None:
        """Stop serving, seal the log, snapshot. Safe to call twice."""
        with self._lock:
            if self._done:
                return
            self._done = True
        self._server.stop()  # drains replies + force-fsyncs the AOF
        if self._persistence is not None:
            self._persistence.close(final_snapshot=True)
        if self._agent is not None:
            # forfeit the remaining grant back to the machine ledger
            self._agent.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.kv_server",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=6379, help="0 = pick a free port"
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="data directory; enables the durability plane and recovery",
    )
    parser.add_argument(
        "--appendonly",
        choices=("yes", "no"),
        default="yes",
        help="append mutations to the AOF (requires --dir)",
    )
    parser.add_argument(
        "--appendfsync",
        choices=FSYNC_POLICIES,
        default="everysec",
    )
    parser.add_argument(
        "--threaded",
        action="store_true",
        help="thread-per-connection server instead of the event loop",
    )
    parser.add_argument(
        "--sma-pages",
        type=int,
        default=None,
        help="cap the local soft memory budget (pages)",
    )
    parser.add_argument(
        "--smd-socket",
        default=None,
        help="unix socket of the machine-wide SMD; overrides --sma-pages",
    )
    parser.add_argument(
        "--cluster-shard",
        type=int,
        default=None,
        help="serve shard N of a hash-slot cluster (needs --cluster-nodes)",
    )
    parser.add_argument(
        "--cluster-nodes",
        default=None,
        help="comma-separated host:port of every shard, in shard order",
    )
    parser.add_argument(
        "--tier",
        choices=("on", "off"),
        default="on",
        help="compressed second-chance tier (demote-before-drop)",
    )
    parser.add_argument(
        "--replicaof",
        default=None,
        metavar="HOST:PORT",
        help="boot as a read-only replica of this master",
    )
    parser.add_argument(
        "--repl-backlog",
        type=int,
        default=None,
        help="replication backlog ring capacity in bytes",
    )
    args = parser.parse_args(argv)

    if args.dir is None and args.appendonly == "yes" and "--appendonly" in (
        argv or sys.argv
    ):
        parser.error("--appendonly requires --dir")

    store, persistence, server = build_server(
        host=args.host,
        port=args.port,
        data_dir=args.dir,
        appendonly=args.appendonly == "yes",
        appendfsync=args.appendfsync,
        threaded=args.threaded,
        sma_pages=args.sma_pages,
        smd_socket=args.smd_socket,
        cluster_shard=args.cluster_shard,
        cluster_nodes=args.cluster_nodes,
        tier=args.tier == "on",
        replicaof=args.replicaof,
        repl_backlog=args.repl_backlog,
    )
    shutdown = GracefulShutdown(server, persistence, store.smd_agent)
    signal.signal(signal.SIGTERM, shutdown.request)
    signal.signal(signal.SIGINT, shutdown.request)

    server.start()
    host, port = server.address
    print(f"READY {host} {port}", flush=True)
    shutdown.wait()
    shutdown.run()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
