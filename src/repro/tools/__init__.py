"""Operator tooling: human-readable state reports.

``smadump``-style introspection for debugging and for the examples:
render an SMA's heaps and ledgers, a daemon's per-process table, or a
whole simulated machine as aligned text.
"""

from repro.tools.report import machine_report, sma_report, smd_report
from repro.tools.timeline import render_timeline

__all__ = [
    "machine_report",
    "render_timeline",
    "sma_report",
    "smd_report",
]
