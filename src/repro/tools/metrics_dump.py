"""Snapshot (and diff) a live server's observability plane as JSON.

Connects to a running RESP server, issues the extended ``INFO`` and
``SLOWLOG GET``, and emits one JSON document — the machine-readable
twin of the human-readable ``INFO`` text.  Two snapshots taken before
and after an experiment diff into "what happened in between": every
numeric series is subtracted, which is exactly meaningful for the
monotonic counters and histogram counts the soak harness relies on.

Repeating ``--addr host:port`` snapshots a whole cluster in one
document: a ``shards`` list with each shard's full snapshot plus a
merged ``# Stats`` section summing the numeric counters across shards
(machine-wide ops, hits, reclaims — the view the single SMD budgets
against).

Usage::

    python -m repro.tools.metrics_dump --port 6379 > before.json
    ... run traffic ...
    python -m repro.tools.metrics_dump --port 6379 > after.json
    python -m repro.tools.metrics_dump --diff before.json after.json
    python -m repro.tools.metrics_dump --addr :7000 --addr :7001
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.kvstore.tcp import TcpKvClient


def parse_info(payload: bytes) -> dict[str, dict[str, Any]]:
    """Parse sectioned INFO text into ``{section: {key: value}}``.

    Values parse as int, then float, then stay strings.  Lines before
    the first ``# Section`` header land in a ``""`` section (legacy
    flat output).
    """
    sections: dict[str, dict[str, Any]] = {}
    current = sections.setdefault("", {})
    for raw_line in payload.decode(errors="backslashreplace").splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            current = sections.setdefault(line[1:].strip(), {})
            continue
        key, sep, value = line.partition(":")
        if not sep:
            continue
        current[key] = _coerce(value)
    return {name: body for name, body in sections.items() if body}


def _coerce(value: str) -> Any:
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def snapshot(
    host: str, port: int, *, slowlog_count: int = 16
) -> dict[str, Any]:
    """One observability snapshot of the server at ``host:port``."""
    with TcpKvClient((host, port)) as client:
        info_payload = client.execute(b"INFO")
        slowlog = client.execute(b"SLOWLOG", b"GET", str(slowlog_count))
    assert isinstance(info_payload, bytes)
    return {
        "address": f"{host}:{port}",
        "info": parse_info(info_payload),
        "slowlog": [
            {
                "id": entry_id,
                "timestamp": timestamp,
                "duration_us": duration_us,
                "argv": [
                    a.decode(errors="backslashreplace") for a in argv
                ],
            }
            for entry_id, timestamp, duration_us, argv in slowlog  # type: ignore[union-attr]
        ],
    }


def parse_addr(spec: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``host:port`` (or bare ``:port``) → ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise ValueError(f"--addr wants host:port, got {spec!r}")
    return (host or default_host, int(port))


#: ``addr -> last # Replication section seen`` — a process-lifetime
#: cache so a shard that stops answering mid-experiment still reports
#: its last-known replication offset (marked stale) instead of the
#: section silently vanishing from the dump
_LAST_REPLICATION: dict[str, dict[str, Any]] = {}


def cluster_snapshot(
    addresses: list[tuple[str, int]], *, slowlog_count: int = 16
) -> dict[str, Any]:
    """Per-shard snapshots plus summed machine-wide ``# Stats``.

    Shards that refuse the connection are recorded as
    ``{"address": ..., "error": ...}`` rather than failing the whole
    dump — a cluster mid-restart still yields a useful document. When
    the shard answered earlier in this process's lifetime, its
    last-known ``# Replication`` section rides along under
    ``replication`` with ``replication_stale: true`` — during failover
    triage the dead node's final offset is the whole point.

    ``tier_total`` sums the ``tier.*`` second-chance gauges from each
    shard's ``# SoftMemory`` section (every shard runs its own tier
    over the shared SMD budget, so the machine-wide compressed
    footprint is their sum).
    """
    shards: list[dict[str, Any]] = []
    totals: dict[str, Any] = {}
    tier_totals: dict[str, Any] = {}
    reachable = 0
    for host, port in addresses:
        address = f"{host}:{port}"
        try:
            shard = snapshot(host, port, slowlog_count=slowlog_count)
        except (OSError, ConnectionError) as exc:
            entry: dict[str, Any] = {"address": address, "error": str(exc)}
            known = _LAST_REPLICATION.get(address)
            if known is not None:
                entry["replication"] = known
                entry["replication_stale"] = True
            shards.append(entry)
            continue
        replication = shard["info"].get("Replication")
        if replication:
            _LAST_REPLICATION[address] = dict(replication)
        shards.append(shard)
        reachable += 1
        for key, value in shard["info"].get("Stats", {}).items():
            if isinstance(value, (int, float)):
                totals[key] = round(totals.get(key, 0) + value, 9)
        for key, value in shard["info"].get("SoftMemory", {}).items():
            if not key.startswith("tier."):
                continue
            if key.endswith((".mean", ".p50", ".p99", ".max")):
                continue  # percentiles don't sum across shards
            if isinstance(value, (int, float)):
                tier_totals[key] = round(tier_totals.get(key, 0) + value, 9)
    return {
        "shards": shards,
        "shard_count": len(addresses),
        "shards_reachable": reachable,
        "stats_total": totals,
        "tier_total": tier_totals,
    }


def diff(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Numeric ``after - before`` over the INFO sections.

    Non-numeric values and keys present on only one side carry the
    ``after`` value verbatim, so the diff is always a complete picture
    of the second snapshot.
    """
    out: dict[str, Any] = {}
    before_info = before.get("info", {})
    for section, body in after.get("info", {}).items():
        prev = before_info.get(section, {})
        delta: dict[str, Any] = {}
        for key, value in body.items():
            old = prev.get(key)
            if isinstance(value, (int, float)) and isinstance(
                old, (int, float)
            ):
                delta[key] = round(value - old, 9)
            else:
                delta[key] = value
        out[section] = delta
    return {"diff": out}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.metrics_dump",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=6379)
    parser.add_argument(
        "--addr",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="shard address; repeat for a merged multi-shard snapshot",
    )
    parser.add_argument(
        "--slowlog-count",
        type=int,
        default=16,
        help="newest slowlog entries to include (default 16)",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BEFORE", "AFTER"),
        help="diff two snapshot files instead of connecting",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="-",
        help="write JSON here instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.diff:
        with open(args.diff[0]) as fh:
            before = json.load(fh)
        with open(args.diff[1]) as fh:
            after = json.load(fh)
        document = diff(before, after)
    elif args.addr:
        document = cluster_snapshot(
            [parse_addr(spec, default_host=args.host) for spec in args.addr],
            slowlog_count=args.slowlog_count,
        )
    else:
        document = snapshot(
            args.host, args.port, slowlog_count=args.slowlog_count
        )

    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
