"""Workload generators for the experiments.

Deterministic (seeded) generators for: allocation-size traces (the
section 5 stress tests and the heap-policy ablation), Zipfian key
popularity (cache experiments), and the diurnal load curve behind the
section 2 "nocturnal lull" use-case.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.util.units import KIB


def allocation_sizes(
    count: int,
    *,
    size: int = KIB,
    jitter: float = 0.0,
    seed: int = 0,
) -> list[int]:
    """``count`` allocation sizes around ``size``.

    ``jitter`` = 0 reproduces the paper's fixed 1 KiB stress workload;
    jitter > 0 draws uniformly from ``size * [1-jitter, 1+jitter]``
    (server workloads are mostly-small with variance [Larson/Krishnan]).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative: {count}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1): {jitter}")
    if jitter == 0.0:
        return [size] * count
    rng = random.Random(seed)
    low, high = int(size * (1 - jitter)), int(size * (1 + jitter))
    return [rng.randint(max(1, low), high) for _ in range(count)]


def mixed_sizes(
    count: int,
    *,
    small: int = 64,
    large: int = 8 * KIB,
    large_fraction: float = 0.05,
    seed: int = 0,
) -> list[int]:
    """Bimodal small/large mix (most allocations are small [13])."""
    rng = random.Random(seed)
    return [
        large if rng.random() < large_fraction else small
        for _ in range(count)
    ]


def zipf_key_sampler(
    key_count: int, *, s: float = 0.99, seed: int = 0
) -> Callable[[], int]:
    """Sampler over ``range(key_count)`` with Zipf(s) popularity.

    Standard cache-workload skew (YCSB uses s=0.99). Returns a callable
    producing one key index per call.
    """
    if key_count <= 0:
        raise ValueError(f"key_count must be positive: {key_count}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(key_count)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def sample() -> int:
        u = rng.random()
        lo, hi = 0, key_count - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal day/night request-rate curve.

    ``rate(t)`` peaks at ``peak_rps`` mid-day and bottoms out at
    ``trough_rps`` mid-night; ``period`` is a full day in simulated
    seconds. Section 2: "low nocturnal user interaction with web
    services leads to reduced utilization".
    """

    peak_rps: float = 1000.0
    trough_rps: float = 100.0
    period: float = 86400.0
    #: phase shift: t=0 is midnight by default
    phase: float = 0.0

    def rate(self, t: float) -> float:
        mid = (self.peak_rps + self.trough_rps) / 2
        amplitude = (self.peak_rps - self.trough_rps) / 2
        # cosine with minimum at t=0 (midnight)
        return mid - amplitude * math.cos(
            2 * math.pi * ((t - self.phase) % self.period) / self.period
        )

    def is_trough(self, t: float, threshold: float = 0.5) -> bool:
        """True when load is below ``threshold`` of the way to peak."""
        span = self.peak_rps - self.trough_rps
        return self.rate(t) < self.trough_rps + threshold * span

    def ticks(
        self, duration: float, step: float
    ) -> Iterator[tuple[float, float]]:
        """(time, rate) pairs every ``step`` seconds for ``duration``."""
        t = 0.0
        while t < duration:
            yield t, self.rate(t)
            t += step
