"""Canonical experiment scenarios, shared by benches and examples.

Keeping the paper's headline setups in one place means the Figure 2
bench, the example script, and any future analysis all run *the same*
scenario — there is exactly one definition of "the paper's section 5
experiment" in the codebase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.store import DataStore, StoreConfig
from repro.sds.soft_linked_list import SoftLinkedList
from repro.sim.machine import Machine, MachineConfig
from repro.util.units import MIB


@dataclass(frozen=True)
class Figure2Params:
    """The section 5 setup, with the paper's numbers as defaults."""

    keys: int = 130_000
    soft_capacity_bytes: int = 20 * MIB
    competitor_bytes: int = 12 * MIB
    pressure_at: float = 10.13
    redis_traditional_pages: int = 512
    other_traditional_pages: int = 128


@dataclass
class Figure2Result:
    """Everything the figure (and its assertions) needs."""

    machine: Machine
    store: DataStore
    redis_process: object
    other_process: object
    redis_gave_up_bytes: int
    pressure_at: float
    reclaim_done_at: float
    callbacks_invoked: int

    @property
    def reclaim_seconds(self) -> float:
        return self.reclaim_done_at - self.pressure_at


def run_figure2(params: Figure2Params | None = None) -> Figure2Result:
    """Run the paper's Figure 2 scenario end to end.

    A Redis-like store fills ~10 MiB of soft memory with ``keys``
    pairs; at ``pressure_at`` simulated seconds a competitor allocates
    ``competitor_bytes``, forcing the daemon to reclaim from the store.
    Footprints are sampled before, at, and after the event.
    """
    p = params or Figure2Params()
    machine = Machine(MachineConfig(
        soft_capacity_bytes=p.soft_capacity_bytes
    ))
    redis = machine.spawn(
        "redis", traditional_pages=p.redis_traditional_pages
    )
    other = machine.spawn(
        "other", traditional_pages=p.other_traditional_pages
    )
    store = DataStore(
        redis.sma, StoreConfig(time_fn=lambda: machine.clock.now)
    )
    for i in range(p.keys):
        store.set(f"key:{i:07d}".encode(), f"val:{i:07d}".encode())
    machine.sample_footprints()
    redis_before = redis.soft_bytes

    machine.clock.advance_to(p.pressure_at)
    machine.sample_footprints()

    competitor = SoftLinkedList(other.sma, element_size=4096)
    count = p.competitor_bytes // 4096
    for i in range(count):
        competitor.append(i)
    machine.clock.advance(
        machine.costs.allocation_time(count, pages_mapped=count)
    )
    machine.sample_footprints()

    start = machine.log.first("reclaim.start")
    done = machine.log.last("reclaim.done")
    demand_done = machine.log.last("demand.done")
    return Figure2Result(
        machine=machine,
        store=store,
        redis_process=redis,
        other_process=other,
        redis_gave_up_bytes=redis_before - redis.soft_bytes,
        pressure_at=start.time if start else float("nan"),
        reclaim_done_at=done.time if done else float("nan"),
        callbacks_invoked=(
            demand_done.detail["callbacks"] if demand_done else 0
        ),
    )
