"""One simulated machine: frames + daemon + clock + timeline log.

The machine wires the pieces the paper's Figure 1 draws: a shared
physical frame pool, the per-machine Soft Memory Daemon, and per-process
SMAs connected over latency-charged channels. Footprint sampling
produces the time series that Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.daemon.ipc import Channel
from repro.daemon.smd import SmdConfig, SoftMemoryDaemon
from repro.mem.physical import PhysicalMemory
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.process import SimProcess
from repro.util.eventlog import EventLog
from repro.util.units import MIB, bytes_to_pages


@dataclass
class MachineConfig:
    """Machine-level sizing.

    The Figure 2 setup is a machine with 20 MiB of soft capacity — tiny
    by production standards but the paper's actual experiment scale.
    """

    total_memory_bytes: int = 64 * MIB
    soft_capacity_bytes: int = 20 * MIB
    smd: SmdConfig = field(default_factory=SmdConfig)
    costs: CostModel = field(default_factory=CostModel)


class Machine:
    """Container for one machine's memory-management stack."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.clock = SimClock()
        self.log = EventLog()
        self.costs = self.config.costs
        self.physical = PhysicalMemory(self.config.total_memory_bytes)
        self.smd = SoftMemoryDaemon(
            soft_capacity_pages=bytes_to_pages(
                self.config.soft_capacity_bytes
            ),
            config=self.config.smd,
            event_log=self.log,
            time_fn=lambda: self.clock.now,
        )
        self.processes: list[SimProcess] = []

    def new_channel(self) -> Channel:
        """A daemon channel that charges IPC latency to the clock."""
        return Channel(
            on_round_trip=lambda: self.clock.advance(self.costs.ipc_round_trip)
        )

    def spawn(self, name: str, traditional_pages: int = 0) -> SimProcess:
        """Start a process with ``traditional_pages`` of fixed memory."""
        process = SimProcess(self, name, traditional_pages)
        self.processes.append(process)
        self.log.record(
            self.clock.now,
            "process.spawn",
            name=name,
            traditional_pages=traditional_pages,
        )
        return process

    def sample_footprints(self) -> None:
        """Record every live process's footprint at the current time.

        The Figure 2 series are built from these samples:
        ``log.series("footprint", "<process name>")``.
        """
        detail = {
            p.name: p.footprint_bytes for p in self.processes if p.alive
        }
        self.log.record(self.clock.now, "footprint", **detail)

    def footprint_series(self, name: str) -> list[tuple[float, int]]:
        """(time, bytes) samples for one process."""
        return self.log.series("footprint", name)

    @property
    def alive_processes(self) -> list[SimProcess]:
        return [p for p in self.processes if p.alive]

    def __repr__(self) -> str:
        return (
            f"<Machine t={self.clock.now:.3f}s "
            f"procs={len(self.alive_processes)} "
            f"mem={self.physical.used_frames}/{self.physical.total_frames}f>"
        )
