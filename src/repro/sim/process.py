"""Simulated processes: an SMA plus a traditional footprint on a machine.

A :class:`SimProcess` is what the paper calls "Process A" and "Process
B" in Figure 1: a job with some traditional memory (frames taken at
spawn and never revocable) and an SMA through which all of its soft
memory flows. Its ``reclaim`` override charges simulated time for every
demand it services, so machine timelines show reclamation latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.reclaim import ReclamationStats
from repro.core.sma import SoftMemoryAllocator
from repro.util.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine


class _TimedSma(SoftMemoryAllocator):
    """SMA that charges reclamation time to the machine clock."""

    def __init__(self, process: "SimProcess", **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._process = process

    def reclaim(self, demand_pages: int) -> ReclamationStats:
        stats = super().reclaim(demand_pages)
        machine = self._process.machine
        machine.clock.advance(machine.costs.reclamation_time(stats))
        return stats


class SimProcess:
    """One job on a simulated machine."""

    def __init__(
        self,
        machine: "Machine",
        name: str,
        traditional_pages: int = 0,
    ) -> None:
        self.machine = machine
        self.name = name
        self.traditional_pages = traditional_pages
        self.alive = True
        self.kills = 0
        machine.physical.allocate_frames(traditional_pages)
        self.sma: SoftMemoryAllocator = _TimedSma(
            self,
            physical=machine.physical,
            name=name,
        )
        self.record = machine.smd.register(
            self.sma,
            traditional_pages=traditional_pages,
            channel=machine.new_channel(),
        )

    # -- footprint ------------------------------------------------------

    @property
    def soft_bytes(self) -> int:
        return self.sma.soft_bytes

    @property
    def traditional_bytes(self) -> int:
        return self.traditional_pages * PAGE_SIZE

    @property
    def footprint_bytes(self) -> int:
        """Physical bytes attributable to this process right now."""
        return self.traditional_bytes + self.soft_bytes

    def grow_traditional(self, pages: int) -> None:
        """Take more traditional frames (may raise OutOfMemoryError)."""
        self.machine.physical.allocate_frames(pages)
        self.traditional_pages += pages
        self.record.traditional_pages = self.traditional_pages

    def shrink_traditional(self, pages: int) -> None:
        if pages > self.traditional_pages:
            raise ValueError(
                f"cannot shrink {pages} pages; only "
                f"{self.traditional_pages} held"
            )
        self.machine.physical.release_frames(pages)
        self.traditional_pages -= pages
        self.record.traditional_pages = self.traditional_pages

    # -- lifecycle --------------------------------------------------------

    def kill(self) -> None:
        """Terminate the process, releasing every frame it holds.

        This is the fate soft memory exists to avoid; the kill-based
        baseline uses it directly.
        """
        if not self.alive:
            return
        # Soft side: every frame vanishes, no callbacks (that is the
        # disruption killing causes that reclamation avoids).
        self.sma.destroy()
        self.machine.smd.deregister(self.record.pid)
        # Traditional side: frames return to the machine.
        self.machine.physical.release_frames(self.traditional_pages)
        self.alive = False
        self.kills += 1
        self.machine.log.record(
            self.machine.clock.now, "process.kill", name=self.name
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<SimProcess {self.name!r} {state} soft={self.soft_bytes}B>"
