"""Simulated clock: monotone simulated seconds."""

from __future__ import annotations


class SimClock:
    """A clock that only moves when told to.

    All simulation components share one instance; costs are charged by
    :meth:`advance`, and timelines read :attr:`now`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Move time forward to ``deadline`` (no-op if already past)."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:
        return f"<SimClock t={self._now:.6f}s>"
