"""Discrete-event machine simulation.

Ties the memory substrate, the SMA/SMD stack, and a simulated clock into
one machine so experiments can produce *timelines* — Figure 2 of the
paper is a timeline of two processes' memory footprints around a
reclamation event. Costs (callback cleanup, IPC, restarts) come from a
calibrated :class:`~repro.sim.costs.CostModel` rather than wall-clock,
because the Python substrate's absolute speed is meaningless; the
*shape* of the timeline is what the paper's figure shows.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.machine import Machine, MachineConfig
from repro.sim.process import SimProcess
from repro.sim.scenarios import Figure2Params, Figure2Result, run_figure2
from repro.sim.workload import (
    DiurnalLoad,
    allocation_sizes,
    zipf_key_sampler,
)

__all__ = [
    "CostModel",
    "DiurnalLoad",
    "Figure2Params",
    "Figure2Result",
    "run_figure2",
    "Machine",
    "MachineConfig",
    "SimClock",
    "SimProcess",
    "allocation_sizes",
    "zipf_key_sampler",
]
