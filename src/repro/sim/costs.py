"""Calibrated cost model for simulated time.

Anchored to the paper's reported numbers:

* Figure 2 / section 5: reclaiming 2 MiB from a Redis holding 130 K
  pairs in 10 MiB took **3.75 s**, "spent almost exclusively in Redis
  code, invoked via the callback". 2 MiB at ~80 B/pair is ~26 K entries,
  giving **~144 us of callback cleanup per reclaimed entry** — that one
  number dominates reclamation time, exactly as the paper observes.
* Killing Redis instead costs "a minimum of **12 ms** of downtime", plus
  a load-dependent tail-latency period while the cache refills.

The remaining constants are commodity-hardware orders of magnitude; the
experiments' conclusions are insensitive to them because callback cost
dominates by 2-3 decimal orders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reclaim import ReclamationStats


@dataclass(frozen=True)
class CostModel:
    """Simulated durations (seconds) for memory-management actions."""

    #: application callback cleanup per reclaimed entry (Redis: ~144 us)
    callback_cost: float = 144e-6
    #: freeing one allocation inside the SMA (sans callback)
    free_cost: float = 1e-6
    #: making one soft allocation
    alloc_cost: float = 2e-6
    #: one SMA<->SMD request/response exchange (UNIX socket RTT)
    ipc_round_trip: float = 50e-6
    #: returning one page to the OS (munmap amortized)
    page_release_cost: float = 2e-6
    #: mapping/re-backing one page (page fault + zeroing)
    page_map_cost: float = 3e-6
    #: minimum process restart downtime (paper: 12 ms for Redis)
    restart_cost: float = 12e-3
    #: time to re-fetch one evicted cache entry from the backing store
    refill_cost_per_entry: float = 500e-6

    def reclamation_time(self, stats: ReclamationStats) -> float:
        """Simulated duration of servicing one reclamation demand.

        Callback cleanup dominates (the paper's observation); page
        release and bookkeeping are the small remainder.
        """
        return (
            stats.callbacks_invoked * self.callback_cost
            + stats.allocations_freed * self.free_cost
            + (stats.pages_from_pool + stats.pages_from_sds)
            * self.page_release_cost
        )

    def allocation_time(self, count: int, pages_mapped: int = 0) -> float:
        """Simulated duration of ``count`` soft allocations."""
        return count * self.alloc_cost + pages_mapped * self.page_map_cost

    def restart_time(self, entries_to_refill: int = 0) -> float:
        """Downtime + refill work after killing and restarting a process."""
        return self.restart_cost + entries_to_refill * self.refill_cost_per_entry
