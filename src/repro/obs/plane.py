"""The serving-plane observability sink and per-layer metric bindings.

:class:`KvObservability` is the one genuinely hot piece of the
observability plane: the RESP servers call :meth:`observe_command` once
per executed command, so it is written for minimum per-event cost — a
pre-resolved histogram cell per command name (learned on first sight,
bounded), one ``bisect`` into shared bucket bounds, and a threshold
compare for the slowlog.  Everything else in this module is *pull*:
``bind_*`` helpers register gauges whose callables read the existing
stats structs (``SmaStats``, ``AgentStats``, the SMD counters, server
counters) only when a snapshot is taken, adding zero cost to the
allocator and daemon hot paths.

Every :class:`~repro.kvstore.store.DataStore` owns a
``KvObservability`` (``store.obs``) shared by all its server
front-ends, which is what the extended ``INFO`` / ``SLOWLOG`` commands
and the ``repro.tools.metrics_dump`` CLI read.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    HistSnapshot,
    MetricsRegistry,
)
from repro.obs.slowlog import Slowlog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sma import SoftMemoryAllocator
    from repro.daemon.smd import SoftMemoryDaemon
    from repro.kvstore.store import DataStore
    from repro.rpc.agent import SmaAgent

#: pipeline batch-size buckets (commands per readable event)
BATCH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: cap on learned command-name casings (mirrors the dispatch cache)
_MAX_CMD_NAMES = 512


class KvObservability:
    """Per-store observability: command latency, batch sizes, slowlog.

    ``commands`` / ``protocol_errors`` are plain ints because every
    writer path is serialized by the server's store lock (event loop:
    one thread; threaded server: one lock around execution).
    """

    def __init__(
        self,
        name: str = "kv",
        registry: MetricsRegistry | None = None,
        *,
        slowlog_max_len: int = 128,
        slowlog_threshold_us: int = 10_000,
        latency_bounds: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.registry = registry or MetricsRegistry(name)
        self.slowlog = Slowlog(
            max_len=slowlog_max_len, threshold_us=slowlog_threshold_us
        )
        self._bounds = (
            tuple(latency_bounds)
            if latency_bounds is not None
            else DEFAULT_LATENCY_BOUNDS
        )
        #: exact command-name bytes (any casing) -> that command's
        #: histogram cell; resolved once per name, then O(1) per event
        self._cmd_cells: dict[bytes, Any] = {}
        self._slow_s = slowlog_threshold_us / 1e6
        self.commands = 0
        self.protocol_errors = 0
        #: bytes fed to a parser but discarded by an error quarantine
        #: (the poisoned frame and everything buffered behind it)
        self.protocol_dropped_bytes = 0
        self.batch_hist = self.registry.histogram(
            "server.pipeline_batch", bounds=BATCH_BOUNDS
        )
        self._batch_cell = self.batch_hist.shared_cell()
        self._batch_bounds = self.batch_hist.bounds

    # -- hot path -------------------------------------------------------

    def observe_command(
        self, name: bytes, duration: float, argv: list[bytes]
    ) -> None:
        """Record one executed command (called under the server lock)."""
        cell = self._cmd_cells.get(name)
        if cell is None:
            cell = self._learn_command(name)
        cell.observe(bisect_left(self._bounds, duration), duration)
        self.commands += 1
        if duration >= self._slow_s:
            self.slowlog.add(argv, duration)

    def observe_batch(self, executed: int) -> None:
        """Record one readable event's pipelined command count."""
        self._batch_cell.observe(
            bisect_left(self._batch_bounds, executed), executed
        )

    def _learn_command(self, name: bytes) -> Any:
        """Resolve a command name to its histogram cell (first sight).

        All casings of one command share one histogram, registered as
        ``cmd.<NAME>.latency``.  The exact-bytes mapping is bounded so
        hostile random casings cannot grow it without limit (they fall
        back to re-resolving, still correct)."""
        canonical = name.upper()
        label = canonical.decode("ascii", errors="backslashreplace")
        hist = self.registry.histogram(
            f"cmd.{label}.latency", bounds=self._bounds
        )
        cell = hist.shared_cell()
        if len(self._cmd_cells) < _MAX_CMD_NAMES:
            self._cmd_cells[name] = cell
            self._cmd_cells.setdefault(canonical, cell)
        return cell

    # -- slowlog config -------------------------------------------------

    @property
    def slowlog_threshold_us(self) -> int:
        return self.slowlog.threshold_us

    def set_slowlog_threshold_us(self, threshold_us: int) -> None:
        self.slowlog.threshold_us = threshold_us
        self._slow_s = threshold_us / 1e6

    # -- read side ------------------------------------------------------

    def command_stats(self) -> dict[str, HistSnapshot]:
        """``COMMAND-NAME -> latency snapshot`` for every seen command."""
        out: dict[str, HistSnapshot] = {}
        for name in self.registry.names():
            if name.startswith("cmd.") and name.endswith(".latency"):
                hist = self.registry.get(name)
                snap = hist.snapshot()
                if snap.count:
                    out[name[len("cmd."):-len(".latency")]] = snap
        return out

    def __repr__(self) -> str:
        return (
            f"<KvObservability {self.name!r} commands={self.commands} "
            f"metrics={len(self.registry)}>"
        )


# ----------------------------------------------------------------------
# pull-gauge bindings (zero hot-path cost)
# ----------------------------------------------------------------------


def _bind_attrs(
    registry: MetricsRegistry, prefix: str, obj: Any, names: Iterable[str]
) -> None:
    for attr in names:
        registry.gauge(
            f"{prefix}.{attr}", fn=lambda o=obj, a=attr: getattr(o, a)
        )


def bind_sma(
    registry: MetricsRegistry,
    sma: "SoftMemoryAllocator",
    prefix: str = "sma",
) -> None:
    """Expose one SMA's ledgers and lifetime counters as pull gauges."""
    stats = sma.stats
    _bind_attrs(
        registry,
        f"{prefix}.stats",
        stats,
        (
            "allocations",
            "frees",
            "daemon_requests",
            "batch_denials",
            "pages_mapped",
            "pages_released",
            "pages_rebacked",
            "reclamations",
            "degraded_denials",
        ),
    )
    registry.gauge(f"{prefix}.granted_pages", fn=lambda: sma.budget.granted)
    registry.gauge(f"{prefix}.held_pages", fn=lambda: sma.budget.held)
    registry.gauge(f"{prefix}.unused_pages", fn=lambda: sma.budget.unused)
    registry.gauge(f"{prefix}.pool_pages", fn=lambda: sma.pool.page_count)
    registry.gauge(f"{prefix}.live_bytes", fn=lambda: sma.live_bytes)
    registry.gauge(
        f"{prefix}.live_allocations", fn=lambda: sma.live_allocations
    )
    registry.gauge(f"{prefix}.contexts", fn=lambda: len(sma.contexts))
    registry.gauge(f"{prefix}.degraded", fn=lambda: int(sma.degraded))
    registry.gauge(
        f"{prefix}.callback_errors",
        fn=lambda: sum(c.callback_errors for c in sma.contexts),
    )


def bind_smd(
    registry: MetricsRegistry,
    smd: "SoftMemoryDaemon",
    prefix: str = "smd",
) -> None:
    """Expose the daemon's ledger, counters, and per-process budgets."""
    _bind_attrs(
        registry,
        prefix,
        smd,
        (
            "requests",
            "denials",
            "reclamation_episodes",
            "demands_issued",
            "pages_granted",
            "pages_released",
            "pages_reclaimed",
            "over_reclaimed_pages",
            "capacity_pages",
            "assigned_pages",
            "unassigned_pages",
            "pressure",
        ),
    )
    registry.gauge(f"{prefix}.processes", fn=lambda: len(smd.registry))

    def per_process() -> dict[str, float]:
        out: dict[str, float] = {}
        for record in smd.registry:
            tag = f"{record.name}.{record.pid}"
            out[f"{tag}.granted_pages"] = record.granted_pages
            out[f"{tag}.demands_received"] = record.demands_received
            out[f"{tag}.pages_reclaimed_from"] = record.pages_reclaimed_from
            out[f"{tag}.requests_denied"] = record.requests_denied
        return out

    registry.multi_gauge(f"{prefix}.process", per_process)


def bind_agent(
    registry: MetricsRegistry, agent: "SmaAgent", prefix: str = "rpc"
) -> None:
    """Expose one RPC agent's fault-tolerance counters as pull gauges."""
    _bind_attrs(
        registry,
        prefix,
        agent.stats,
        (
            "round_trips",
            "retries",
            "timeouts",
            "pings_sent",
            "pongs_received",
            "degraded_entries",
            "degraded_seconds",
            "reconnects",
            "resync_pages_shed",
        ),
    )
    registry.gauge(
        f"{prefix}.demands_served", fn=lambda: agent.demands_served
    )
    registry.gauge(f"{prefix}.degraded", fn=lambda: int(agent.degraded))


def bind_store(
    registry: MetricsRegistry, store: "DataStore", prefix: str = "store"
) -> None:
    """Expose the keyspace counters and footprint as pull gauges."""
    _bind_attrs(
        registry,
        f"{prefix}.stats",
        store.stats,
        (
            "hits",
            "misses",
            "keys_set",
            "keys_deleted",
            "expired_keys",
            "reclaimed_keys",
            "oom_denials",
        ),
    )
    registry.gauge(f"{prefix}.keys", fn=lambda: len(store.keyspace))
    registry.gauge(f"{prefix}.soft_bytes", fn=lambda: store.soft_bytes)
    registry.gauge(
        f"{prefix}.traditional_bytes", fn=lambda: store.traditional_bytes
    )


def bind_tier(
    registry: MetricsRegistry, soft_dict: Any, prefix: str = "tier"
) -> Any:
    """Expose the compressed second-chance tier as pull gauges.

    ``soft_dict`` is a :class:`~repro.kvstore.dict.SoftDict` (typed
    ``Any`` to keep the obs plane import-light).  Returns the observe
    callable for the ``tier.promote_latency`` histogram — the dict
    calls it with each promotion's inflate-to-readmit duration in
    seconds, so p99 promote cost is visible next to command latency.
    """
    _bind_attrs(
        registry,
        prefix,
        soft_dict.tier_stats,
        (
            "demotions",
            "promotions",
            "second_chance_drops",
            "displacements",
            "incompressible",
            "promotion_denials",
            "bytes_saved",
        ),
    )
    registry.gauge(
        f"{prefix}.compressed_entries",
        fn=lambda: soft_dict.compressed_entries,
    )
    registry.gauge(
        f"{prefix}.compressed_bytes",
        fn=lambda: soft_dict.compressed_bytes,
    )
    registry.gauge(
        f"{prefix}.enabled", fn=lambda: int(soft_dict.tier.enabled)
    )
    hist = registry.histogram(
        f"{prefix}.promote_latency", bounds=DEFAULT_LATENCY_BOUNDS
    )
    cell = hist.shared_cell()
    bounds = hist.bounds

    def observe(duration: float) -> None:
        cell.observe(bisect_left(bounds, duration), duration)

    return observe


def bind_persistence(
    registry: MetricsRegistry, persist: Any, prefix: str = "persist"
) -> None:
    """Expose the durability plane's counters and ledgers as pull gauges.

    ``persist`` is a :class:`~repro.kvstore.persist.engine.Persistence`
    (typed as ``Any`` to keep the obs plane import-light). The stats
    dataclass fields (``rdb_last_save_time``, ``recovery_truncated_bytes``,
    ...) bind alongside the live properties (``aof_size``,
    ``aof_pending_bytes``, ``fsync_errors``), so INFO and the registry
    snapshot read the same numbers.
    """
    _bind_attrs(
        registry,
        f"{prefix}.stats",
        persist.stats,
        tuple(persist.stats.as_dict()),
    )
    for attr in (
        "aof_size",
        "aof_pending_bytes",
        "fsync_errors",
        "write_errors",
        "generation",
    ):
        registry.gauge(
            f"{prefix}.{attr}", fn=lambda a=attr: getattr(persist, a)
        )
    registry.gauge(
        f"{prefix}.aof_enabled", fn=lambda: int(persist.aof_enabled)
    )
    registry.gauge(
        f"{prefix}.bgsave_in_progress",
        fn=lambda: int(persist.bgsave_in_progress),
    )


def bind_server(
    registry: MetricsRegistry, server: Any, prefix: str = "server"
) -> None:
    """Expose a TCP front-end's counters as pull gauges.

    Works for both :class:`~repro.kvstore.tcp.EventLoopKvServer` and
    :class:`~repro.kvstore.tcp.ThreadedKvServer`; attributes specific
    to the event loop are bound only when present.  Rebinding (a new
    server over the same store) points the gauges at the new server.
    """
    registry.gauge(
        f"{prefix}.connections_served",
        fn=lambda: server.connections_served,
    )
    registry.gauge(
        f"{prefix}.commands_processed",
        fn=lambda: server.commands_processed,
    )
    for attr in ("clients_dropped", "batches_executed", "max_batch"):
        if hasattr(server, attr):
            registry.gauge(
                f"{prefix}.{attr}",
                fn=lambda a=attr: getattr(server, a),
            )
