"""Machine-wide observability plane.

Dependency-free runtime telemetry for every layer of the reproduction:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket latency histograms (lock-free per-thread
  cells, merged on read);
* :mod:`repro.obs.slowlog` — a Redis-SLOWLOG-style bounded ring of the
  slowest commands;
* :mod:`repro.obs.plane` — :class:`KvObservability`, the serving-plane
  hot-path sink (per-command latency, pipeline batch sizes, slowlog),
  plus ``bind_*`` helpers that expose the existing stats structs of the
  SMA, SMD, RPC agent, store, and TCP servers as pull gauges.

The pull-gauge design keeps the allocator and daemon hot paths at zero
added cost: their cheap plain-int counters stay authoritative and the
registry reads them only at snapshot time. Only the serving plane pays
a genuine per-event cost (one timestamp and one histogram update per
command), because per-command latency cannot be reconstructed later.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    HistSnapshot,
    Histogram,
    MetricsRegistry,
    MultiGauge,
)
from repro.obs.plane import (
    KvObservability,
    bind_agent,
    bind_server,
    bind_sma,
    bind_smd,
    bind_store,
)
from repro.obs.slowlog import Slowlog, SlowlogEntry

__all__ = [
    "Counter",
    "Gauge",
    "MultiGauge",
    "Histogram",
    "HistSnapshot",
    "MetricsRegistry",
    "Slowlog",
    "SlowlogEntry",
    "KvObservability",
    "bind_sma",
    "bind_smd",
    "bind_agent",
    "bind_store",
    "bind_server",
]
