"""Bounded ring buffer of the slowest commands (Redis SLOWLOG shape).

Entries are only recorded for commands at or above a configurable
duration threshold, the ring holds at most ``max_len`` of them (oldest
evicted first), and long argument vectors are truncated — all three
bounds together guarantee the log cannot grow with traffic, which the
regression tests assert under sustained load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

#: arguments beyond this count are collapsed into a "... (N more)" marker
_MAX_ARGS = 8
#: bytes kept per argument before truncation
_MAX_ARG_BYTES = 64


@dataclass(frozen=True)
class SlowlogEntry:
    """One slow command: monotonically increasing id, wall-clock stamp,
    duration in microseconds, and the (truncated) argument vector."""

    entry_id: int
    timestamp: float
    duration_us: int
    argv: tuple[bytes, ...]


def _truncate(argv: Iterable[bytes]) -> tuple[bytes, ...]:
    argv = list(argv)
    kept = [
        a if len(a) <= _MAX_ARG_BYTES
        else a[:_MAX_ARG_BYTES] + b"...(truncated)"
        for a in argv[:_MAX_ARGS]
    ]
    if len(argv) > _MAX_ARGS:
        kept.append(b"... (%d more arguments)" % (len(argv) - _MAX_ARGS))
    return tuple(kept)


class Slowlog:
    """Threshold-filtered, size-bounded log of slow commands."""

    def __init__(
        self,
        max_len: int = 128,
        threshold_us: int = 10_000,
        time_fn=time.time,
    ) -> None:
        if max_len < 1:
            raise ValueError(f"max_len must be positive: {max_len}")
        self.max_len = max_len
        self.threshold_us = threshold_us
        self._time_fn = time_fn
        self._entries: list[SlowlogEntry] = []
        self._start = 0  # ring head inside _entries
        self._next_id = 0
        #: lifetime count of entries ever logged (monotonic; survives reset)
        self.total_logged = 0

    @property
    def threshold_s(self) -> float:
        """The threshold in seconds (what the hot path compares against)."""
        return self.threshold_us / 1e6

    def add(self, argv: Iterable[bytes], duration_s: float) -> None:
        """Record one command unconditionally (caller checked the threshold)."""
        entry = SlowlogEntry(
            entry_id=self._next_id,
            timestamp=self._time_fn(),
            duration_us=int(duration_s * 1e6),
            argv=_truncate(argv),
        )
        self._next_id += 1
        self.total_logged += 1
        entries = self._entries
        if len(entries) < self.max_len:
            entries.append(entry)
        else:
            # overwrite the oldest slot: O(1), no list shifting
            entries[self._start] = entry
            self._start = (self._start + 1) % self.max_len

    def maybe_add(self, argv: Iterable[bytes], duration_s: float) -> bool:
        """Record the command iff it is at or above the threshold."""
        if duration_s * 1e6 >= self.threshold_us:
            self.add(argv, duration_s)
            return True
        return False

    def entries(self, count: int | None = None) -> list[SlowlogEntry]:
        """Newest-first entries (like ``SLOWLOG GET``)."""
        entries = self._entries
        ordered = (
            entries[self._start:] + entries[:self._start]
        )  # oldest .. newest
        ordered.reverse()
        if count is not None:
            ordered = ordered[: max(0, count)]
        return ordered

    def set_max_len(self, max_len: int) -> None:
        """Resize the ring, keeping the newest entries that still fit."""
        if max_len < 1:
            raise ValueError(f"max_len must be positive: {max_len}")
        ordered = self.entries()  # newest .. oldest
        ordered.reverse()  # oldest .. newest
        self._entries = ordered[-max_len:]
        self._start = 0
        self.max_len = max_len

    def reset(self) -> None:
        self._entries.clear()
        self._start = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<Slowlog len={len(self)}/{self.max_len} "
            f"threshold={self.threshold_us}us>"
        )
