"""Counters, gauges, and fixed-bucket histograms behind one registry.

Design constraints (see ISSUE 3):

* **dependency-free** — pure stdlib, importable anywhere the core is;
* **lock-cheap** — the write paths take no locks.  Counters and
  histograms keep one cell per writer thread (keyed by
  ``threading.get_ident()``); each thread mutates only its own cell, so
  writes never race, and readers merge the cells on demand.  Creating a
  metric or a new thread cell does take the registry/metric into a tiny
  critical section, but that happens once per (metric, thread);
* **monotonic counters** — counters and histogram counts can only grow,
  which is what lets the soak harness assert "no counter ever
  decreases" across arbitrary traffic.

Gauges come in three flavours: set-value (``set``/``add``), *pull*
(a zero-argument callable sampled at snapshot time — how the SMA/SMD/
RPC stats structs are exposed with zero hot-path cost), and
:class:`MultiGauge` (a callable returning a ``suffix -> value`` dict,
for per-process fan-out that changes membership at runtime).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "MultiGauge",
    "Histogram",
    "HistSnapshot",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds, in seconds: a 1-2.5-5 ladder
#: from 1 microsecond to 10 seconds (values above the last bound land in
#: the implicit overflow bucket).  Chosen to resolve both the ~10 us
#: command dispatch times and multi-second reclamation stalls.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)


class Counter:
    """Monotonic event counter with per-thread cells.

    ``inc`` touches only the calling thread's cell (one dict store), so
    concurrent writers never lose increments; ``value`` sums the cells.
    """

    __slots__ = ("name", "_cells")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: dict[int, int] = {}

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        ident = threading.get_ident()
        cells = self._cells
        cells[ident] = cells.get(ident, 0) + amount

    @property
    def value(self) -> int:
        return sum(self._cells.values())

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Point-in-time value: either set by the owner or pulled via ``fn``."""

    __slots__ = ("name", "_fn", "_value")

    def __init__(
        self, name: str, fn: Callable[[], float] | None = None
    ) -> None:
        self.name = name
        self._fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is pull-only")
        self._value = value

    def add(self, delta: float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is pull-only")
        self._value += delta

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class MultiGauge:
    """A pull gauge whose callable returns a ``suffix -> value`` mapping.

    Used where the set of series is dynamic — per-process budget gauges
    on the daemon keep working as processes register and exit.
    """

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], Mapping[str, float]]) -> None:
        self.name = name
        self._fn = fn

    def values(self) -> dict[str, float]:
        return dict(self._fn())

    def __repr__(self) -> str:
        return f"<MultiGauge {self.name}>"


class _HistCell:
    """One writer thread's slice of a histogram."""

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self, buckets: int) -> None:
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, index: int, value: float) -> None:
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value


@dataclass(frozen=True)
class HistSnapshot:
    """Immutable merged view of a histogram (supports ``+`` for merges)."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # len(bounds) + 1 (last = overflow)
    count: int
    total: float
    vmin: float
    vmax: float

    def __add__(self, other: "HistSnapshot") -> "HistSnapshot":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        # An empty side's vmin/vmax are 0.0 sentinels, not observations —
        # they must not clamp the merged extrema.
        if self.count == 0:
            vmin, vmax = other.vmin, other.vmax
        elif other.count == 0:
            vmin, vmax = self.vmin, self.vmax
        else:
            vmin = min(self.vmin, other.vmin)
            vmax = max(self.vmax, other.vmax)
        return HistSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            count=self.count + other.count,
            total=self.total + other.total,
            vmin=vmin,
            vmax=vmax,
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate, clamped to [min, max].

        The estimate walks the cumulative counts to the bucket holding
        rank ``q * count`` and interpolates linearly inside it.  Exact
        guarantees (relied on by the property tests): the result always
        lies within the observed ``[vmin, vmax]`` range, never leaves
        the chosen bucket's bounds, and is non-decreasing in ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lower = self.bounds[i - 1] if i > 0 else self.vmin
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.vmax
                )
                if upper < lower:  # all data in one low bucket
                    upper = lower
                frac = (target - cumulative) / n
                value = lower + (upper - lower) * frac
                return min(max(value, self.vmin), self.vmax)
            cumulative += n
        return self.vmax


class Histogram:
    """Fixed-bucket histogram with per-thread cells.

    ``observe`` is the general lock-free path.  ``cell_for_caller``
    hands out the calling thread's raw cell so an externally serialized
    hot loop (the kvstore serving plane, which already executes under
    one lock) can update it without re-resolving the thread ident per
    event.
    """

    __slots__ = ("name", "bounds", "_cells", "_cells_lock")

    def __init__(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> None:
        self.name = name
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(chosen, chosen[1:])):
            raise ValueError(f"bounds must be strictly increasing: {chosen}")
        self.bounds = chosen
        self._cells: dict[int, _HistCell] = {}
        self._cells_lock = threading.Lock()

    def cell_for_caller(self) -> _HistCell:
        ident = threading.get_ident()
        cell = self._cells.get(ident)
        if cell is None:
            with self._cells_lock:
                cell = self._cells.get(ident)
                if cell is None:
                    cell = _HistCell(len(self.bounds) + 1)
                    self._cells[ident] = cell
        return cell

    def shared_cell(self) -> _HistCell:
        """One cell shared by all writers — for externally serialized
        hot loops (the serving plane executes under a single lock), so
        the per-event thread-ident lookup of :meth:`observe` is paid
        once instead of per observation.  Do NOT mix with unserialized
        multi-threaded writers."""
        with self._cells_lock:
            cell = self._cells.get("shared")  # type: ignore[arg-type]
            if cell is None:
                cell = _HistCell(len(self.bounds) + 1)
                self._cells["shared"] = cell  # type: ignore[index]
            return cell

    def observe(self, value: float) -> None:
        self.cell_for_caller().observe(bisect_left(self.bounds, value), value)

    def snapshot(self) -> HistSnapshot:
        counts = [0] * (len(self.bounds) + 1)
        count = 0
        total = 0.0
        vmin = float("inf")
        vmax = float("-inf")
        for cell in list(self._cells.values()):
            for i, n in enumerate(cell.counts):
                counts[i] += n
            count += cell.count
            total += cell.total
            if cell.vmin < vmin:
                vmin = cell.vmin
            if cell.vmax > vmax:
                vmax = cell.vmax
        return HistSnapshot(
            bounds=self.bounds,
            counts=tuple(counts),
            count=count,
            total=total,
            vmin=vmin if count else 0.0,
            vmax=vmax if count else 0.0,
        )

    @property
    def count(self) -> int:
        return sum(cell.count for cell in list(self._cells.values()))

    def quantile(self, q: float) -> float:
        return self.snapshot().quantile(q)

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named home for every metric of one process.

    Metrics are get-or-create by name (re-requesting an existing name
    returns the same object; requesting it as a different kind raises),
    so independent layers can share a registry without coordination.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()
        #: pull gauges whose callable raised during a snapshot (the
        #: snapshot survives; the broken series is just skipped)
        self.gauge_errors = 0

    # -- constructors ---------------------------------------------------

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], Any]) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif type(metric) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None
    ) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is not fn:
            # re-binding an existing pull gauge (e.g. a fresh server
            # front-end over the same store) points it at the new source
            gauge._fn = fn
        return gauge

    def multi_gauge(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> MultiGauge:
        gauge = self._get_or_create(
            name, MultiGauge, lambda: MultiGauge(name, fn)
        )
        if gauge._fn is not fn:
            gauge._fn = fn  # re-bind, like Gauge
        return gauge

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds)
        )

    # -- queries --------------------------------------------------------

    def get(self, name: str) -> Any | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return list(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, float]:
        """Flat ``name -> value`` view of every metric, right now.

        Histograms expand to ``<name>.count`` / ``.sum`` / ``.mean`` /
        ``.p50`` / ``.p99`` / ``.max``; multi-gauges to
        ``<name>.<suffix>``.  A raising pull gauge is skipped (and
        counted in :attr:`gauge_errors`) instead of poisoning the whole
        snapshot.
        """
        out: dict[str, float] = {}
        for name, metric in list(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                try:
                    out[name] = metric.value
                except Exception:
                    self.gauge_errors += 1
            elif isinstance(metric, MultiGauge):
                try:
                    values = metric.values()
                except Exception:
                    self.gauge_errors += 1
                    continue
                for suffix, value in values.items():
                    out[f"{name}.{suffix}"] = value
            elif isinstance(metric, Histogram):
                snap = metric.snapshot()
                out[f"{name}.count"] = snap.count
                out[f"{name}.sum"] = snap.total
                out[f"{name}.mean"] = snap.mean
                out[f"{name}.p50"] = snap.quantile(0.50)
                out[f"{name}.p99"] = snap.quantile(0.99)
                out[f"{name}.max"] = snap.vmax
        return out

    def monotonic_snapshot(self) -> dict[str, float]:
        """Only the series guaranteed never to decrease.

        Counters, histogram counts, and histogram sums (observations
        are durations, hence non-negative).  The soak harness diffs two
        of these to assert monotonicity across a traffic phase.
        """
        out: dict[str, float] = {}
        for name, metric in list(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Histogram):
                snap = metric.snapshot()
                out[f"{name}.count"] = snap.count
                out[f"{name}.sum"] = snap.total
                for i, n in enumerate(snap.counts):
                    out[f"{name}.bucket{i}"] = n
        return out

    def __repr__(self) -> str:
        return f"<MetricsRegistry {self.name!r} metrics={len(self)}>"
