"""Daemon-process side of the cross-process protocol.

Wraps a real :class:`~repro.daemon.smd.SoftMemoryDaemon` behind a unix
domain socket. Each client process appears in the daemon's registry as
a :class:`_RemoteSma` proxy whose ledgers are refreshed from the state
snapshot piggybacked on every client frame, and whose ``reclaim`` sends
a DEMAND over the wire and waits for the REPORT.

Per connection there are two threads: a *reader* that only parses
frames (so REPORTs always flow, even while this client's own request
waits its turn) and a *handler* that executes requests against the
daemon under a global lock (episodes from different clients must
serialize — there is one capacity ledger).

Fault tolerance (see ``docs/PROTOCOL.md``):

* requests and releases are idempotent per frame id — a retried or
  duplicated frame gets the cached reply, never a second grant;
* PING frames are answered with PONG directly on the reader thread, so
  liveness is visible even while the handler is busy; a client that
  pinged once and then went silent past ``heartbeat_timeout`` is
  reaped by the server's monitor thread;
* a reconnecting client sends ``hello`` with ``resync``: the daemon
  re-adopts as much of its still-held budget as free capacity allows
  and the follow-up ``resync`` frame settles the final ledger.

Liveness: a client with an in-flight request advertises zero
reclaimable pages, so episodes triggered by other clients skip it —
the demand that could deadlock against its blocked application thread
is never sent. A crashed client is deregistered on disconnect and its
budget returns to the unassigned pool (its memory died with it, which
is exactly the kill semantics the paper describes).
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Any

from repro.core.errors import SoftMemoryDenied
from repro.core.reclaim import ReclamationStats
from repro.daemon.ipc import Channel
from repro.daemon.registry import ProcessRecord
from repro.daemon.smd import SmdConfig, SoftMemoryDaemon
from repro.rpc.config import DEFAULT_RPC_CONFIG, ReplyCache, RpcConfig
from repro.rpc.framing import FrameClosed, FrameStream


class _RemoteBudget:
    """Daemon-side mirror of a client's budget ledger."""

    def __init__(self) -> None:
        self.held = 0
        self.granted = 0


class _RemoteSma:
    """Stands in for the client's SMA inside the daemon's registry."""

    def __init__(self, connection: "_Connection") -> None:
        self._connection = connection
        self.budget = _RemoteBudget()
        self._flexibility = 0
        self._reclaimable = 0
        self.compressed_pages = 0
        #: a client with an in-flight request must not receive demands
        self.busy = False

    def update_state(self, frame: dict[str, Any]) -> None:
        self.budget.held = int(frame.get("held", self.budget.held))
        self.budget.granted = int(frame.get("granted", self.budget.granted))
        self._flexibility = int(
            frame.get("flexibility", self._flexibility)
        )
        self._reclaimable = int(
            frame.get("reclaimable", self._reclaimable)
        )
        self.compressed_pages = int(
            frame.get("compressed", self.compressed_pages)
        )

    def flexibility(self) -> int:
        return 0 if self.busy else self._flexibility

    def reclaimable_pages(self) -> int:
        return 0 if self.busy else self._reclaimable

    def reclaim(self, demand_pages: int) -> ReclamationStats:
        """One DEMAND/REPORT round trip (called inside an episode)."""
        if self.busy:
            # became busy after target selection: skip rather than
            # demand from a client whose app thread is blocked on us
            return ReclamationStats(demanded_pages=demand_pages)
        report = self._connection.demand(demand_pages)
        stats = ReclamationStats(demanded_pages=demand_pages)
        if report is None:  # timeout or disconnect: nothing surrendered
            return stats
        stats.pages_from_budget = int(report.get("pages_from_budget", 0))
        stats.pages_from_pool = int(report.get("pages_from_pool", 0))
        stats.pages_from_sds = int(report.get("pages_from_sds", 0))
        stats.allocations_freed = int(report.get("allocations_freed", 0))
        stats.callbacks_invoked = int(report.get("callbacks_invoked", 0))
        stats.callback_errors = int(report.get("callback_errors", 0))
        self.update_state(report)
        return stats


class _Connection:
    """One client process's socket, reader, and handler."""

    def __init__(self, server: "RpcDaemonServer", sock: socket.socket) -> None:
        self.server = server
        self.config = server.rpc_config
        self.stream = FrameStream(sock)
        self.proxy = _RemoteSma(self)
        self.record: ProcessRecord | None = None
        self._send_lock = threading.Lock()
        self._inbox: "queue.Queue[dict | None]" = queue.Queue()
        self._demand_replies: dict[int, dict[str, Any]] = {}
        self._demand_events: dict[int, threading.Event] = {}
        self._demand_lock = threading.Lock()  # guards the two dicts
        self._demand_ids = iter(range(1, 2**31))
        self.reply_cache = ReplyCache(64)
        self.last_recv = time.monotonic()
        self.saw_ping = False
        self._closed = threading.Event()
        self.reader = threading.Thread(
            target=self._reader_loop, daemon=True
        )
        self.handler = threading.Thread(
            target=self._handler_loop, daemon=True
        )
        self.reader.start()
        self.handler.start()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            self.stream.send(frame)

    def reply(self, request_id: Any, frame: dict[str, Any]) -> None:
        """Send a reply and remember it for duplicate-id resends."""
        if request_id is not None:
            self.reply_cache.put(request_id, frame)
        self.send(frame)

    def demand(self, pages: int) -> dict[str, Any] | None:
        """Send DEMAND, wait for REPORT (None on timeout/disconnect)."""
        demand_id = next(self._demand_ids)
        event = threading.Event()
        with self._demand_lock:
            self._demand_events[demand_id] = event
        try:
            self.send({"op": "demand", "id": demand_id, "pages": pages})
        except OSError:
            with self._demand_lock:
                self._demand_events.pop(demand_id, None)
            return None
        answered = event.wait(timeout=self.config.demand_timeout)
        # Pop both maps under one lock: if the REPORT lands between the
        # wait timing out and this cleanup, we still consume (and use)
        # it instead of stranding the reply dict entry forever.
        with self._demand_lock:
            self._demand_events.pop(demand_id, None)
            reply = self._demand_replies.pop(demand_id, None)
        if not answered and reply is None:
            return None
        return reply

    # -- threads -------------------------------------------------------

    def _reader_loop(self) -> None:
        while not self._closed.is_set():
            try:
                frame = self.stream.recv()
            except (FrameClosed, OSError, ValueError):
                break
            self.last_recv = time.monotonic()
            op = frame.get("op")
            if op == "ping":
                # answered on the reader thread so liveness is visible
                # even while the handler executes a slow episode
                self.saw_ping = True
                try:
                    self.send({"op": "pong", "t": frame.get("t")})
                except OSError:
                    break
            elif op == "pong":
                pass  # any frame already refreshed last_recv
            elif op == "report":
                demand_id = frame.get("id")
                with self._demand_lock:
                    event = self._demand_events.pop(demand_id, None)
                    if event is not None:
                        self._demand_replies[demand_id] = frame
                    # no waiter: the demand timed out — drop the report
                if event is not None:
                    event.set()
            else:
                if op in ("request", "release"):
                    # the client's app thread blocks (holding its SMA
                    # lock) for both ops; make that visible to
                    # concurrent episodes immediately so they never
                    # demand from a blocked client
                    self.proxy.busy = True
                self._inbox.put(frame)
        self._inbox.put(None)  # wake the handler for teardown

    def _handler_loop(self) -> None:
        while True:
            frame = self._inbox.get()
            if frame is None:
                break
            try:
                self.server.handle_frame(self, frame)
            except OSError:
                break
            finally:
                if frame.get("op") in ("request", "release"):
                    self.proxy.busy = False
        self.server.disconnect(self)
        self._closed.set()
        self.stream.close()


class RpcDaemonServer:
    """The machine's soft memory daemon, served over a unix socket."""

    def __init__(
        self,
        socket_path: str,
        soft_capacity_pages: int,
        config: SmdConfig | None = None,
        *,
        rpc_config: RpcConfig | None = None,
    ) -> None:
        self.socket_path = socket_path
        self.smd = SoftMemoryDaemon(soft_capacity_pages, config=config)
        self.rpc_config = rpc_config or DEFAULT_RPC_CONFIG
        self._lock = threading.Lock()  # serializes daemon state changes
        self._connections: list[_Connection] = []
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self.clients_reaped = 0
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(socket_path)
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self._accept_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None

    def start(self) -> "RpcDaemonServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="smd-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="smd-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5)
        self._listener.close()
        for connection in self.connections():
            connection.stream.close()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    def __enter__(self) -> "RpcDaemonServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def connections(self) -> list[_Connection]:
        with self._conn_lock:
            return list(self._connections)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            connection = _Connection(self, sock)
            with self._conn_lock:
                # prune connections whose teardown already completed so
                # the list cannot grow without bound under churn
                self._connections = [
                    c for c in self._connections if not c.closed
                ]
                self._connections.append(connection)

    def _monitor_loop(self) -> None:
        """Reap clients that heartbeated once and then went silent."""
        timeout = self.rpc_config.heartbeat_timeout
        interval = min(0.5, timeout / 2) if timeout > 0 else 0.5
        while not self._stop.is_set():
            if self._stop.wait(interval):
                break
            if timeout <= 0:
                continue
            now = time.monotonic()
            for connection in self.connections():
                if not connection.saw_ping:
                    continue  # client never opted into heartbeats
                if now - connection.last_recv > timeout:
                    self.clients_reaped += 1
                    # closing the socket unwinds reader → handler →
                    # disconnect, returning the budget to the pool
                    connection.stream.close()

    # ------------------------------------------------------------------
    # frame handling (runs on per-connection handler threads)
    # ------------------------------------------------------------------

    def handle_frame(self, connection: _Connection, frame: dict) -> None:
        op = frame.get("op")
        connection.proxy.update_state(frame)
        if op in ("request", "release"):
            cached = connection.reply_cache.get(frame.get("id"))
            if cached is not None:
                # retry or injected duplicate of an already-executed
                # operation: resend the recorded outcome, don't re-run
                connection.send(cached)
                return
        if op == "hello":
            self._handle_hello(connection, frame)
        elif op == "request":
            self._handle_request(connection, frame)
        elif op == "release":
            self._handle_release(connection, frame)
        elif op == "resync":
            self._handle_resync(connection, frame)
        else:
            connection.send({"op": "error", "id": frame.get("id"),
                             "message": f"unknown op {op!r}"})

    def _handle_hello(self, connection: _Connection, frame: dict) -> None:
        resync = bool(frame.get("resync"))
        claim = int(frame.get("granted", 0)) if resync else 0
        startup = accepted = 0
        with self._lock:
            record = ProcessRecord(
                name=str(frame.get("name", "client")),
                sma=connection.proxy,  # type: ignore[arg-type]
                channel=Channel(),
                traditional_pages=int(frame.get("traditional_pages", 0)),
            )
            self.smd.registry.add(record)
            if resync:
                # re-adopt what free capacity allows; the client sheds
                # any overdraft and settles with a follow-up resync frame
                accepted = min(claim, max(0, self.smd.unassigned_pages))
                record.granted_pages += accepted
                self.smd.pages_granted += accepted
                record.resyncs += 1
            else:
                startup = min(
                    self.smd.config.startup_budget_pages,
                    self.smd.unassigned_pages,
                )
                record.granted_pages += startup
                self.smd.pages_granted += startup
        connection.record = record
        connection.send({
            "op": "welcome", "pid": record.pid,
            "startup_budget": startup, "resync_budget": accepted,
        })

    def _handle_request(self, connection: _Connection, frame: dict) -> None:
        record = connection.record
        if record is None:
            connection.send({"op": "error", "id": frame.get("id"),
                             "message": "hello first"})
            return
        pages = int(frame["pages"])
        try:
            with self._lock:
                granted = self.smd.handle_request(record.pid, pages)
            connection.reply(frame["id"], {
                "op": "grant", "id": frame["id"], "pages": granted,
            })
        except SoftMemoryDenied as exc:
            connection.reply(frame["id"], {
                "op": "deny", "id": frame["id"],
                "reclaimed": exc.reclaimed,
            })

    def _handle_release(self, connection: _Connection, frame: dict) -> None:
        record = connection.record
        if record is None:
            return
        with self._lock:
            self.smd.handle_release(record.pid, int(frame["pages"]))
        connection.reply(frame["id"], {"op": "ok", "id": frame["id"]})

    def _handle_resync(self, connection: _Connection, frame: dict) -> None:
        """Adopt a reconnected client's settled ledger wholesale."""
        record = connection.record
        if record is None:
            return
        with self._lock:
            self.smd.adopt_granted(record.pid, int(frame.get("granted", 0)))

    def disconnect(self, connection: _Connection) -> None:
        """Client went away: its budget returns to the pool."""
        with self._conn_lock:
            if connection in self._connections:
                self._connections.remove(connection)
        record = connection.record
        if record is not None:
            with self._lock:
                try:
                    self.smd.deregister(record.pid)
                except KeyError:
                    pass
            connection.record = None
