"""Daemon-process side of the cross-process protocol.

Wraps a real :class:`~repro.daemon.smd.SoftMemoryDaemon` behind a unix
domain socket. Each client process appears in the daemon's registry as
a :class:`_RemoteSma` proxy whose ledgers are refreshed from the state
snapshot piggybacked on every client frame, and whose ``reclaim`` sends
a DEMAND over the wire and waits for the REPORT.

Per connection there are two threads: a *reader* that only parses
frames (so REPORTs always flow, even while this client's own request
waits its turn) and a *handler* that executes requests against the
daemon under a global lock (episodes from different clients must
serialize — there is one capacity ledger).

Liveness: a client with an in-flight request advertises zero
reclaimable pages, so episodes triggered by other clients skip it —
the demand that could deadlock against its blocked application thread
is never sent. A crashed client is deregistered on disconnect and its
budget returns to the unassigned pool (its memory died with it, which
is exactly the kill semantics the paper describes).
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from typing import Any

from repro.core.errors import SoftMemoryDenied
from repro.core.reclaim import ReclamationStats
from repro.daemon.ipc import Channel
from repro.daemon.registry import ProcessRecord
from repro.daemon.smd import SmdConfig, SoftMemoryDaemon
from repro.rpc.framing import FrameClosed, FrameStream

DEMAND_TIMEOUT = 5.0


class _RemoteBudget:
    """Daemon-side mirror of a client's budget ledger."""

    def __init__(self) -> None:
        self.held = 0
        self.granted = 0


class _RemoteSma:
    """Stands in for the client's SMA inside the daemon's registry."""

    def __init__(self, connection: "_Connection") -> None:
        self._connection = connection
        self.budget = _RemoteBudget()
        self._flexibility = 0
        self._reclaimable = 0
        #: a client with an in-flight request must not receive demands
        self.busy = False

    def update_state(self, frame: dict[str, Any]) -> None:
        self.budget.held = int(frame.get("held", self.budget.held))
        self.budget.granted = int(frame.get("granted", self.budget.granted))
        self._flexibility = int(
            frame.get("flexibility", self._flexibility)
        )
        self._reclaimable = int(
            frame.get("reclaimable", self._reclaimable)
        )

    def flexibility(self) -> int:
        return 0 if self.busy else self._flexibility

    def reclaimable_pages(self) -> int:
        return 0 if self.busy else self._reclaimable

    def reclaim(self, demand_pages: int) -> ReclamationStats:
        """One DEMAND/REPORT round trip (called inside an episode)."""
        if self.busy:
            # became busy after target selection: skip rather than
            # demand from a client whose app thread is blocked on us
            return ReclamationStats(demanded_pages=demand_pages)
        report = self._connection.demand(demand_pages)
        stats = ReclamationStats(demanded_pages=demand_pages)
        if report is None:  # timeout or disconnect: nothing surrendered
            return stats
        stats.pages_from_budget = int(report.get("pages_from_budget", 0))
        stats.pages_from_pool = int(report.get("pages_from_pool", 0))
        stats.pages_from_sds = int(report.get("pages_from_sds", 0))
        stats.allocations_freed = int(report.get("allocations_freed", 0))
        stats.callbacks_invoked = int(report.get("callbacks_invoked", 0))
        stats.callback_errors = int(report.get("callback_errors", 0))
        self.update_state(report)
        return stats


class _Connection:
    """One client process's socket, reader, and handler."""

    def __init__(self, server: "RpcDaemonServer", sock: socket.socket) -> None:
        self.server = server
        self.stream = FrameStream(sock)
        self.proxy = _RemoteSma(self)
        self.record: ProcessRecord | None = None
        self._send_lock = threading.Lock()
        self._inbox: "queue.Queue[dict | None]" = queue.Queue()
        self._demand_replies: dict[int, dict[str, Any]] = {}
        self._demand_events: dict[int, threading.Event] = {}
        self._demand_ids = iter(range(1, 2**31))
        self._closed = threading.Event()
        self.reader = threading.Thread(
            target=self._reader_loop, daemon=True
        )
        self.handler = threading.Thread(
            target=self._handler_loop, daemon=True
        )
        self.reader.start()
        self.handler.start()

    def send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            self.stream.send(frame)

    def demand(self, pages: int) -> dict[str, Any] | None:
        """Send DEMAND, wait for REPORT (None on timeout/disconnect)."""
        demand_id = next(self._demand_ids)
        event = threading.Event()
        self._demand_events[demand_id] = event
        try:
            self.send({"op": "demand", "id": demand_id, "pages": pages})
        except OSError:
            self._demand_events.pop(demand_id, None)
            return None
        if not event.wait(timeout=DEMAND_TIMEOUT):
            self._demand_events.pop(demand_id, None)
            return None
        return self._demand_replies.pop(demand_id, None)

    # -- threads -------------------------------------------------------

    def _reader_loop(self) -> None:
        while not self._closed.is_set():
            try:
                frame = self.stream.recv()
            except (FrameClosed, OSError, ValueError):
                break
            op = frame.get("op")
            if op == "report":
                demand_id = frame.get("id")
                event = self._demand_events.pop(demand_id, None)
                if event is not None:
                    self._demand_replies[demand_id] = frame
                    event.set()
            else:
                if op in ("request", "release"):
                    # the client's app thread blocks (holding its SMA
                    # lock) for both ops; make that visible to
                    # concurrent episodes immediately so they never
                    # demand from a blocked client
                    self.proxy.busy = True
                self._inbox.put(frame)
        self._inbox.put(None)  # wake the handler for teardown

    def _handler_loop(self) -> None:
        while True:
            frame = self._inbox.get()
            if frame is None:
                break
            try:
                self.server.handle_frame(self, frame)
            except OSError:
                break
            finally:
                if frame.get("op") in ("request", "release"):
                    self.proxy.busy = False
        self.server.disconnect(self)
        self._closed.set()
        self.stream.close()


class RpcDaemonServer:
    """The machine's soft memory daemon, served over a unix socket."""

    def __init__(
        self,
        socket_path: str,
        soft_capacity_pages: int,
        config: SmdConfig | None = None,
    ) -> None:
        self.socket_path = socket_path
        self.smd = SoftMemoryDaemon(soft_capacity_pages, config=config)
        self._lock = threading.Lock()  # serializes daemon state changes
        self._connections: list[_Connection] = []
        self._stop = threading.Event()
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(socket_path)
        self._listener.listen(16)
        self._listener.settimeout(0.2)
        self._accept_thread: threading.Thread | None = None

    def start(self) -> "RpcDaemonServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="smd-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._listener.close()
        for connection in list(self._connections):
            connection.stream.close()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    def __enter__(self) -> "RpcDaemonServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._connections.append(_Connection(self, sock))

    # ------------------------------------------------------------------
    # frame handling (runs on per-connection handler threads)
    # ------------------------------------------------------------------

    def handle_frame(self, connection: _Connection, frame: dict) -> None:
        op = frame.get("op")
        connection.proxy.update_state(frame)
        if op == "hello":
            self._handle_hello(connection, frame)
        elif op == "request":
            self._handle_request(connection, frame)
        elif op == "release":
            self._handle_release(connection, frame)
        else:
            connection.send({"op": "error", "id": frame.get("id"),
                             "message": f"unknown op {op!r}"})

    def _handle_hello(self, connection: _Connection, frame: dict) -> None:
        with self._lock:
            record = ProcessRecord(
                name=str(frame.get("name", "client")),
                sma=connection.proxy,  # type: ignore[arg-type]
                channel=Channel(),
                traditional_pages=int(frame.get("traditional_pages", 0)),
            )
            self.smd.registry.add(record)
            startup = min(
                self.smd.config.startup_budget_pages,
                self.smd.unassigned_pages,
            )
            record.granted_pages += startup
        connection.record = record
        connection.send({
            "op": "welcome", "pid": record.pid, "startup_budget": startup,
        })

    def _handle_request(self, connection: _Connection, frame: dict) -> None:
        record = connection.record
        if record is None:
            connection.send({"op": "error", "id": frame.get("id"),
                             "message": "hello first"})
            return
        pages = int(frame["pages"])
        try:
            with self._lock:
                granted = self.smd.handle_request(record.pid, pages)
            connection.send({
                "op": "grant", "id": frame["id"], "pages": granted,
            })
        except SoftMemoryDenied as exc:
            connection.send({
                "op": "deny", "id": frame["id"],
                "reclaimed": exc.reclaimed,
            })

    def _handle_release(self, connection: _Connection, frame: dict) -> None:
        record = connection.record
        if record is None:
            return
        with self._lock:
            self.smd.handle_release(record.pid, int(frame["pages"]))
        connection.send({"op": "ok", "id": frame["id"]})

    def disconnect(self, connection: _Connection) -> None:
        """Client went away: its budget returns to the pool."""
        if connection in self._connections:
            self._connections.remove(connection)
        record = connection.record
        if record is not None:
            with self._lock:
                try:
                    self.smd.deregister(record.pid)
                except KeyError:
                    pass
            connection.record = None
