"""Client-process side of the cross-process protocol.

The :class:`SmaAgent` plugs into a
:class:`~repro.core.locking.LockedSoftMemoryAllocator` as its daemon
client: budget requests and releases become socket round-trips, and a
background reader thread services the daemon's incoming DEMAND frames
by running the SMA's reclamation and sending back the REPORT.

Locking note: the application thread blocks inside ``request`` while
holding the SMA's lock, so an incoming demand for *this* process could
not take it — the daemon therefore never demands from a client with an
in-flight request (its advertised ``reclaimable`` is zero while busy).
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any

from repro.core.errors import SoftMemoryDenied
from repro.core.locking import LockedSoftMemoryAllocator
from repro.rpc.framing import FrameClosed, FrameStream

_request_ids = itertools.count(1)


class SmaAgent:
    """Connects one process's SMA to a remote daemon.

    Usage (inside the worker process)::

        sma = LockedSoftMemoryAllocator(name="worker")
        agent = SmaAgent.connect(socket_path, sma,
                                 traditional_pages=100)
        # ... use soft data structures normally ...
        agent.close()
    """

    def __init__(
        self,
        stream: FrameStream,
        sma: LockedSoftMemoryAllocator,
        *,
        name: str,
        traditional_pages: int = 0,
    ) -> None:
        self._stream = stream
        self._sma = sma
        self.name = name
        self.traditional_pages = traditional_pages
        self._pending: dict[int, "threading.Event"] = {}
        self._replies: dict[int, dict[str, Any]] = {}
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        self.demands_served = 0

        # handshake (before the reader thread exists: plain recv)
        self._send({"op": "hello", "name": name,
                    "traditional_pages": traditional_pages,
                    **self._state()})
        welcome = stream.recv()
        if welcome.get("op") != "welcome":
            raise ConnectionError(f"bad handshake reply: {welcome!r}")
        self.pid = int(welcome["pid"])
        sma.connect_daemon(self)  # must precede any budget changes
        startup = int(welcome.get("startup_budget", 0))
        if startup:
            sma.budget.grant(startup)

        self._reader = threading.Thread(
            target=self._reader_loop, name=f"sma-agent-{name}", daemon=True
        )
        self._reader.start()

    @classmethod
    def connect(
        cls,
        socket_path: str,
        sma: LockedSoftMemoryAllocator,
        *,
        traditional_pages: int = 0,
        timeout: float = 30.0,
    ) -> "SmaAgent":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(socket_path)
        return cls(
            FrameStream(sock), sma,
            name=sma.name, traditional_pages=traditional_pages,
        )

    # ------------------------------------------------------------------
    # DaemonClient protocol (called by the SMA, app thread)
    # ------------------------------------------------------------------

    def request(self, pages: int) -> int:
        reply = self._round_trip({"op": "request", "pages": pages})
        if reply["op"] == "grant":
            return int(reply["pages"])
        if reply["op"] == "deny":
            raise SoftMemoryDenied(
                self.pid, pages, int(reply.get("reclaimed", 0))
            )
        raise ConnectionError(f"unexpected reply: {reply!r}")

    def notify_release(self, pages: int) -> None:
        self._round_trip({"op": "release", "pages": pages})

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _state(self) -> dict[str, int]:
        """Ledger snapshot piggybacked on every client frame."""
        budget = self._sma.budget
        return {
            "held": budget.held,
            "granted": budget.granted,
            "flexibility": self._sma.flexibility(),
            "reclaimable": self._sma.reclaimable_pages(),
        }

    def _send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            self._stream.send(frame)

    def _round_trip(self, frame: dict[str, Any]) -> dict[str, Any]:
        request_id = next(_request_ids)
        done = threading.Event()
        self._pending[request_id] = done
        self._send({**frame, "id": request_id, **self._state()})
        if not done.wait(timeout=60.0):
            raise TimeoutError(f"daemon did not answer {frame['op']!r}")
        return self._replies.pop(request_id)

    def _reader_loop(self) -> None:
        while not self._closed.is_set():
            try:
                frame = self._stream.recv()
            except (FrameClosed, OSError, ValueError):
                break
            if frame.get("op") == "demand":
                self._serve_demand(frame)
            else:
                request_id = frame.get("id")
                event = self._pending.pop(request_id, None)
                if event is not None:
                    self._replies[request_id] = frame
                    event.set()
        # unblock anything still waiting
        for request_id, event in list(self._pending.items()):
            self._replies[request_id] = {"op": "deny", "reclaimed": 0}
            event.set()

    DEMAND_LOCK_TIMEOUT = 2.0

    def _serve_demand(self, frame: dict[str, Any]) -> None:
        # Bounded lock wait: if our own application thread holds the
        # SMA lock while blocked on a daemon round-trip, stalling here
        # would deadlock the episode against us — report zero instead.
        stats = self._sma.try_reclaim(
            int(frame["pages"]), timeout=self.DEMAND_LOCK_TIMEOUT
        )
        if stats is None:
            self._send({
                "op": "report", "id": frame["id"],
                "pages_reclaimed": 0, "pages_from_budget": 0,
                "pages_from_pool": 0, "pages_from_sds": 0,
                "allocations_freed": 0, "callbacks_invoked": 0,
                "callback_errors": 0, "busy": True,
            })
            return
        self.demands_served += 1
        self._send({
            "op": "report",
            "id": frame["id"],
            "pages_reclaimed": stats.pages_reclaimed,
            "pages_from_budget": stats.pages_from_budget,
            "pages_from_pool": stats.pages_from_pool,
            "pages_from_sds": stats.pages_from_sds,
            "allocations_freed": stats.allocations_freed,
            "callbacks_invoked": stats.callbacks_invoked,
            "callback_errors": stats.callback_errors,
            **self._state(),
        })

    def close(self) -> None:
        self._closed.set()
        self._stream.close()
        self._reader.join(timeout=5)
