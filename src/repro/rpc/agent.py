"""Client-process side of the cross-process protocol.

The :class:`SmaAgent` plugs into a
:class:`~repro.core.locking.LockedSoftMemoryAllocator` as its daemon
client: budget requests and releases become socket round-trips, and a
background reader thread services the daemon's incoming DEMAND frames
by running the SMA's reclamation and sending back the REPORT.

Fault tolerance (see ``docs/PROTOCOL.md``):

* round-trips retry with exponential backoff under
  :class:`~repro.rpc.config.RpcConfig`; the daemon deduplicates by
  frame id, so a retry whose original was actually processed gets the
  cached reply instead of a double grant;
* a monitor thread sends PING frames and declares the daemon dead
  after ``heartbeat_timeout`` of silence;
* on connection loss the agent flips the SMA into *degraded mode* —
  no new grants (asks fail fast with
  :class:`~repro.core.errors.SoftMemoryDegraded`, a
  ``SoftMemoryDenied`` subclass, never an unhandled transport error),
  existing soft memory stays usable — and keeps redialing in the
  background; on reconnect it re-registers and resyncs the budget
  ledger with the daemon.

Locking note: the application thread blocks inside ``request`` while
holding the SMA's lock, so an incoming demand for *this* process could
not take it — the daemon therefore never demands from a client with an
in-flight request (its advertised ``reclaimable`` is zero while busy).
"""

from __future__ import annotations

import dataclasses
import itertools
import socket
import threading
import time
from typing import Any, Callable

from repro.core.errors import (
    DaemonUnreachable,
    SoftMemoryDegraded,
    SoftMemoryDenied,
)
from repro.core.locking import LockedSoftMemoryAllocator
from repro.rpc.config import DEFAULT_RPC_CONFIG, ReplyCache, RpcConfig
from repro.rpc.framing import FrameClosed, FrameStream

_request_ids = itertools.count(1)

#: sentinel reply installed for waiters when the connection dies
_CONN_LOST_OP = "__connection_lost__"

StreamWrapper = Callable[[FrameStream], FrameStream]


class AgentStats:
    """Lifetime counters for the fault-tolerance machinery."""

    __slots__ = (
        "round_trips",
        "retries",
        "timeouts",
        "pings_sent",
        "pongs_received",
        "degraded_entries",
        "degraded_seconds",
        "reconnects",
        "resync_pages_shed",
    )

    def __init__(self) -> None:
        self.round_trips = 0
        self.retries = 0
        self.timeouts = 0
        self.pings_sent = 0
        self.pongs_received = 0
        self.degraded_entries = 0
        self.degraded_seconds = 0.0
        self.reconnects = 0
        self.resync_pages_shed = 0

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}


class SmaAgent:
    """Connects one process's SMA to a remote daemon.

    Usage (inside the worker process)::

        sma = LockedSoftMemoryAllocator(name="worker")
        agent = SmaAgent.connect(socket_path, sma,
                                 traditional_pages=100)
        # ... use soft data structures normally ...
        agent.close()
    """

    def __init__(
        self,
        stream: FrameStream,
        sma: LockedSoftMemoryAllocator,
        *,
        name: str,
        traditional_pages: int = 0,
        config: RpcConfig | None = None,
        socket_path: str | None = None,
        stream_wrapper: StreamWrapper | None = None,
    ) -> None:
        self._stream = stream
        self._sma = sma
        self.name = name
        self.traditional_pages = traditional_pages
        self._config = config or DEFAULT_RPC_CONFIG
        self._socket_path = socket_path
        self._stream_wrapper = stream_wrapper
        self._pending: dict[int, "threading.Event"] = {}
        self._replies: dict[int, dict[str, Any]] = {}
        self._pending_lock = threading.Lock()  # guards the two dicts
        self._send_lock = threading.Lock()
        self._transition_lock = threading.Lock()
        self._closed = threading.Event()
        self._degraded = threading.Event()
        self._degraded_at = 0.0
        self._last_recv = time.monotonic()
        self._demand_cache = ReplyCache(32)
        self.stats = AgentStats()
        self.demands_served = 0

        # handshake (before the reader thread exists: plain recv)
        welcome = self._handshake(stream, resync=False)
        self.pid = int(welcome["pid"])
        sma.connect_daemon(self)  # must precede any budget changes
        startup = int(welcome.get("startup_budget", 0))
        if startup:
            sma.budget.grant(startup)

        self._reader = threading.Thread(
            target=self._reader_loop, args=(stream,),
            name=f"sma-agent-{name}", daemon=True,
        )
        self._reader.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name=f"sma-agent-{name}-monitor", daemon=True,
        )
        self._monitor.start()

    @classmethod
    def connect(
        cls,
        socket_path: str,
        sma: LockedSoftMemoryAllocator,
        *,
        traditional_pages: int = 0,
        timeout: float | None = None,
        config: RpcConfig | None = None,
        stream_wrapper: StreamWrapper | None = None,
    ) -> "SmaAgent":
        config = config or DEFAULT_RPC_CONFIG
        if timeout is not None:  # explicit override wins over config
            config = dataclasses.replace(config, connect_timeout=timeout)
        stream = cls._dial(socket_path, config, stream_wrapper)
        return cls(
            stream, sma,
            name=sma.name, traditional_pages=traditional_pages,
            config=config, socket_path=socket_path,
            stream_wrapper=stream_wrapper,
        )

    @staticmethod
    def _dial(
        socket_path: str,
        config: RpcConfig,
        stream_wrapper: StreamWrapper | None,
    ) -> FrameStream:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(config.connect_timeout)
        try:
            sock.connect(socket_path)
        except OSError:
            sock.close()
            raise
        stream: FrameStream = FrameStream(sock)
        if stream_wrapper is not None:
            stream = stream_wrapper(stream)
        return stream

    def _handshake(
        self, stream: FrameStream, *, resync: bool
    ) -> dict[str, Any]:
        """HELLO/WELCOME exchange; bounded by the connect timeout."""
        hello = {
            "op": "hello", "name": self.name,
            "traditional_pages": self.traditional_pages,
            **self._state(),
        }
        if resync:
            hello["resync"] = True
        stream.send(hello)
        welcome = stream.recv()
        if welcome.get("op") != "welcome":
            raise ConnectionError(f"bad handshake reply: {welcome!r}")
        # handshake done: liveness is the heartbeat's job from here on,
        # so an idle-but-healthy connection must never time out a recv
        stream.settimeout(None)
        return welcome

    # ------------------------------------------------------------------
    # DaemonClient protocol (called by the SMA, app thread)
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded.is_set()

    def request(self, pages: int) -> int:
        if self._degraded.is_set():
            raise SoftMemoryDegraded(self.pid, pages)
        try:
            reply = self._round_trip({"op": "request", "pages": pages})
        except DaemonUnreachable:
            # transport failure is not a policy denial: degrade instead
            raise SoftMemoryDegraded(self.pid, pages) from None
        if reply["op"] == "grant":
            return int(reply["pages"])
        if reply["op"] == "deny":
            raise SoftMemoryDenied(
                self.pid, pages, int(reply.get("reclaimed", 0))
            )
        raise ConnectionError(f"unexpected reply: {reply!r}")

    def notify_release(self, pages: int) -> None:
        if self._degraded.is_set():
            return  # the local revoke already happened; resync reconciles
        try:
            self._round_trip({"op": "release", "pages": pages})
        except DaemonUnreachable:
            pass  # ditto: the reconnect resync carries the final ledger

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _state(self) -> dict[str, int]:
        """Ledger snapshot piggybacked on every client frame."""
        budget = self._sma.budget
        return {
            "held": budget.held,
            "granted": budget.granted,
            "flexibility": self._sma.flexibility(),
            "reclaimable": self._sma.reclaimable_pages(),
            "compressed": getattr(self._sma, "compressed_pages", 0),
        }

    def _send(self, frame: dict[str, Any]) -> None:
        with self._send_lock:
            self._stream.send(frame)

    def _round_trip(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One id-tagged exchange, retried with exponential backoff.

        The same id is reused across retries so the daemon's reply
        cache can answer a retry whose original reply was lost without
        re-executing the operation. Every exit path removes the id from
        both the pending and reply maps — a late reply for a timed-out
        id is dropped by the reader, never stranded.
        """
        retry = self._config.request_retry
        attempts = max(1, retry.attempts)
        request_id = next(_request_ids)
        self.stats.round_trips += 1
        for attempt in range(attempts):
            if self._closed.is_set() or self._degraded.is_set():
                break
            done = threading.Event()
            with self._pending_lock:
                self._pending[request_id] = done
            try:
                self._send({**frame, "id": request_id, **self._state()})
            except (FrameClosed, OSError):
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                    self._replies.pop(request_id, None)
                self._connection_lost(self._stream)
                break
            answered = done.wait(timeout=self._config.request_timeout)
            with self._pending_lock:
                self._pending.pop(request_id, None)
                # the reply may land between the wait timing out and
                # this pop — popping both under one lock closes the race
                reply = self._replies.pop(request_id, None)
            if reply is not None:
                if reply.get("op") == _CONN_LOST_OP:
                    break
                return reply
            if not answered:
                self.stats.timeouts += 1
            if attempt + 1 < attempts:
                self.stats.retries += 1
                time.sleep(retry.delay(attempt))
        if not self._closed.is_set() and not self._degraded.is_set():
            # daemon up but unresponsive past the whole schedule:
            # treat as dead so the monitor starts redialing
            self._connection_lost(self._stream)
        raise DaemonUnreachable(frame.get("op", ""))

    # -- reader --------------------------------------------------------

    def _reader_loop(self, stream: FrameStream) -> None:
        while not self._closed.is_set():
            try:
                frame = stream.recv()
            except (FrameClosed, OSError, ValueError):
                break
            self._last_recv = time.monotonic()
            op = frame.get("op")
            if op == "demand":
                self._serve_demand(frame)
            elif op == "ping":
                try:
                    self._send({"op": "pong", "t": frame.get("t")})
                except (FrameClosed, OSError):
                    break
            elif op == "pong":
                self.stats.pongs_received += 1
            else:
                request_id = frame.get("id")
                with self._pending_lock:
                    event = self._pending.pop(request_id, None)
                    if event is not None:
                        self._replies[request_id] = frame
                    # no waiter: late reply for a timed-out id — drop it
                if event is not None:
                    event.set()
        # a dead daemon is a *transport* event, not a denial: transition
        # to degraded mode and fail waiters with the distinct sentinel
        self._connection_lost(stream)

    def _connection_lost(self, stream: FrameStream | None) -> None:
        """Idempotent transition into degraded mode."""
        with self._transition_lock:
            if self._closed.is_set() or self._degraded.is_set():
                return
            if stream is not None and stream is not self._stream:
                return  # a stale reader outliving a reconnect
            self._degraded.set()
            self._degraded_at = time.monotonic()
            self.stats.degraded_entries += 1
            self._sma.mark_degraded(True)
        try:
            self._stream.close()
        except OSError:
            pass
        with self._pending_lock:
            waiters = list(self._pending.items())
            self._pending.clear()
            for request_id, _event in waiters:
                self._replies[request_id] = {"op": _CONN_LOST_OP}
        for _request_id, event in waiters:
            event.set()

    # -- heartbeat + reconnect (monitor thread) ------------------------

    def _monitor_loop(self) -> None:
        attempt = 0
        while not self._closed.is_set():
            if self._degraded.is_set():
                if self._socket_path is None or not self._config.reconnect:
                    if self._closed.wait(0.1):
                        break
                    continue
                if self._closed.wait(
                    self._config.reconnect_backoff.delay(attempt)
                ):
                    break
                attempt += 1
                try:
                    self._reconnect()
                except Exception:
                    continue  # next backoff step
                attempt = 0
            else:
                interval = self._config.heartbeat_interval
                if interval <= 0:
                    if self._closed.wait(0.2):
                        break
                    continue
                if self._closed.wait(interval):
                    break
                if self._closed.is_set() or self._degraded.is_set():
                    continue
                silence = time.monotonic() - self._last_recv
                if (
                    self._config.heartbeat_timeout > 0
                    and silence > self._config.heartbeat_timeout
                ):
                    self._connection_lost(self._stream)
                    continue
                try:
                    self._send({"op": "ping", "t": time.monotonic()})
                    self.stats.pings_sent += 1
                except (FrameClosed, OSError):
                    self._connection_lost(self._stream)

    def _reconnect(self) -> None:
        """Dial, re-register, resync the ledger, leave degraded mode."""
        assert self._socket_path is not None
        stream = self._dial(
            self._socket_path, self._config, self._stream_wrapper
        )
        try:
            welcome = self._handshake(stream, resync=True)
        except Exception:
            stream.close()
            raise
        accepted = int(welcome.get("resync_budget", 0))
        with self._send_lock:
            self._stream = stream
        self.pid = int(welcome["pid"])
        self._demand_cache.clear()  # demand ids restart per connection
        self._last_recv = time.monotonic()
        self._reader = threading.Thread(
            target=self._reader_loop, args=(stream,),
            name=f"sma-agent-{self.name}", daemon=True,
        )
        self._reader.start()
        # Ledger resync: the daemon re-accepted what its free capacity
        # allowed; shed the overdraft locally (budget tier first, so
        # usually zero disturbance), then report the settled ledger so
        # both sides agree even if shedding under-fulfilled.
        overdraft = self._sma.budget.granted - accepted
        if overdraft > 0:
            shed = self._sma.try_reclaim(
                overdraft, timeout=self._config.demand_lock_timeout
            )
            if shed is not None:
                self.stats.resync_pages_shed += shed.pages_reclaimed
        try:
            self._send({"op": "resync", **self._state()})
        except (FrameClosed, OSError):
            stream.close()
            raise
        self.stats.reconnects += 1
        self.stats.degraded_seconds += time.monotonic() - self._degraded_at
        self._sma.mark_degraded(False)
        self._degraded.clear()

    # -- demands -------------------------------------------------------

    def _serve_demand(self, frame: dict[str, Any]) -> None:
        demand_id = frame.get("id")
        cached = self._demand_cache.get(demand_id)
        if cached is not None:
            # duplicate DEMAND (retry or injected): do not reclaim twice
            try:
                self._send(cached)
            except (FrameClosed, OSError):
                pass
            return
        # Bounded lock wait: if our own application thread holds the
        # SMA lock while blocked on a daemon round-trip, stalling here
        # would deadlock the episode against us — report zero instead.
        stats = self._sma.try_reclaim(
            int(frame["pages"]), timeout=self._config.demand_lock_timeout
        )
        if stats is None:
            report = {
                "op": "report", "id": demand_id,
                "pages_reclaimed": 0, "pages_from_budget": 0,
                "pages_from_pool": 0, "pages_from_sds": 0,
                "allocations_freed": 0, "callbacks_invoked": 0,
                "callback_errors": 0, "busy": True,
            }
        else:
            self.demands_served += 1
            report = {
                "op": "report",
                "id": demand_id,
                "pages_reclaimed": stats.pages_reclaimed,
                "pages_from_budget": stats.pages_from_budget,
                "pages_from_pool": stats.pages_from_pool,
                "pages_from_sds": stats.pages_from_sds,
                "allocations_freed": stats.allocations_freed,
                "callbacks_invoked": stats.callbacks_invoked,
                "callback_errors": stats.callback_errors,
                **self._state(),
            }
            self._demand_cache.put(demand_id, report)
        try:
            self._send(report)
        except (FrameClosed, OSError):
            pass  # reader will notice the dead stream on its next recv

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._degraded.is_set():
            self.stats.degraded_seconds += (
                time.monotonic() - self._degraded_at
            )
        self._stream.close()
        self._reader.join(timeout=5)
        self._monitor.join(timeout=5)
