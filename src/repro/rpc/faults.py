"""Fault injection for the cross-process protocol.

Wraps a :class:`~repro.rpc.framing.FrameStream` with a configurable
chaos layer: frames can be silently dropped, delayed, duplicated, or
turned into a full connection teardown, on either direction. Tests and
benchmarks use it to prove the retry/heartbeat/degraded-mode machinery
actually absorbs these faults instead of leaking them into application
code.

Usage::

    injector = FaultInjector(FaultPlan(drop=0.1, seed=7))
    agent = SmaAgent.connect(path, sma, stream_wrapper=injector.wrap)
    ...
    print(injector.stats)   # frames dropped/delayed/duplicated/...

The injector (not the stream) owns the RNG and counters, so a plan
stays in force across reconnects — the freshly dialed stream is wrapped
again and keeps rolling the same dice.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.rpc.framing import FrameClosed, FrameStream


@dataclass(frozen=True)
class FaultPlan:
    """Per-frame fault probabilities (independent rolls, in this order:
    disconnect, drop, delay, duplicate; at most one of disconnect/drop
    fires per frame)."""

    drop: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.02
    duplicate: float = 0.0
    disconnect: float = 0.0
    #: first N frames (per injector, both directions) pass clean, so a
    #: handshake can survive even a hostile plan
    after_frames: int = 0
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "disconnect"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability: {p}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative: {self.delay_s}")
        if self.after_frames < 0:
            raise ValueError(
                f"after_frames must be non-negative: {self.after_frames}"
            )


class FaultStats:
    """Counters shared by every stream an injector has wrapped."""

    __slots__ = (
        "frames_sent",
        "frames_received",
        "dropped",
        "delayed",
        "duplicated",
        "disconnects",
    )

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.disconnects = 0

    @property
    def faults_injected(self) -> int:
        return self.dropped + self.delayed + self.duplicated + self.disconnects

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<FaultStats {body}>"


class FaultInjector:
    """Factory that wraps streams under one plan/RNG/stat set."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()  # rolls come from several threads
        self._frames_seen = 0

    def wrap(self, stream: FrameStream) -> "FaultyStream":
        return FaultyStream(stream, self)

    # -- dice ----------------------------------------------------------

    def _roll(self) -> dict[str, bool]:
        """One frame's fate, decided atomically."""
        plan = self.plan
        with self._lock:
            self._frames_seen += 1
            if self._frames_seen <= plan.after_frames:
                return {}
            fate = {
                "disconnect": self._rng.random() < plan.disconnect,
                "drop": self._rng.random() < plan.drop,
                "delay": self._rng.random() < plan.delay,
                "duplicate": self._rng.random() < plan.duplicate,
            }
        return fate


class FaultyStream:
    """A FrameStream look-alike that misbehaves on purpose.

    ``send`` faults model a lossy path *to* the peer (the peer never
    sees a dropped frame); ``recv`` faults model loss on the way back
    (the peer already acted, this side never learns). An injected
    disconnect closes the real socket — indistinguishable from a peer
    crash, which is the point.
    """

    def __init__(self, inner: FrameStream, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector
        self._replay: list[dict[str, Any]] = []  # recv-side duplicates

    def send(self, frame: dict[str, Any]) -> None:
        stats = self._injector.stats
        fate = self._injector._roll()
        if fate.get("disconnect"):
            stats.disconnects += 1
            self._inner.close()
            raise FrameClosed("injected disconnect (send)")
        if fate.get("drop"):
            stats.dropped += 1
            return
        if fate.get("delay"):
            stats.delayed += 1
            time.sleep(self._injector.plan.delay_s)
        self._inner.send(frame)
        stats.frames_sent += 1
        if fate.get("duplicate"):
            stats.duplicated += 1
            self._inner.send(frame)

    def recv(self) -> dict[str, Any]:
        stats = self._injector.stats
        if self._replay:
            return self._replay.pop()
        while True:
            frame = self._inner.recv()
            stats.frames_received += 1
            fate = self._injector._roll()
            if fate.get("disconnect"):
                stats.disconnects += 1
                self._inner.close()
                raise FrameClosed("injected disconnect (recv)")
            if fate.get("drop"):
                stats.dropped += 1
                continue
            if fate.get("delay"):
                stats.delayed += 1
                time.sleep(self._injector.plan.delay_s)
            if fate.get("duplicate"):
                stats.duplicated += 1
                self._replay.append(frame)
            return frame

    def settimeout(self, timeout: float | None) -> None:
        self._inner.settimeout(timeout)

    def close(self) -> None:
        self._inner.close()
