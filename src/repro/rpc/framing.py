"""Newline-delimited JSON frames over a stream socket.

The protocol's payloads are small dictionaries (page counts, ids,
stats), so JSON-per-line keeps the wire format debuggable with nothing
but ``socat``. Frames never contain raw newlines because JSON strings
escape them.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class FrameClosed(ConnectionError):
    """The peer closed the stream."""


class FrameStream:
    """Blocking frame reader/writer over a connected socket.

    ``max_frame_bytes`` bounds the receive buffer: a peer that streams
    garbage without a newline is detected instead of growing the buffer
    without limit (protocol frames are a few hundred bytes).
    """

    def __init__(
        self, sock: socket.socket, *, max_frame_bytes: int = 1 << 20
    ) -> None:
        if max_frame_bytes < 2:
            raise ValueError(
                f"max_frame_bytes too small: {max_frame_bytes}"
            )
        self._sock = sock
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    def send(self, frame: dict[str, Any]) -> None:
        """Serialize and send one frame (thread-safe per sendall)."""
        data = json.dumps(frame, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(data)

    def recv(self) -> dict[str, Any]:
        """Block until one complete frame arrives.

        Raises :class:`FrameClosed` on EOF (including EOF with a
        partial frame buffered) and ``ValueError`` on malformed or
        oversized frames; honours the socket's timeout settings
        (``socket.timeout`` propagates).
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                frame = json.loads(line)
                if not isinstance(frame, dict):
                    raise ValueError(f"frame is not an object: {frame!r}")
                return frame
            if len(self._buffer) > self._max_frame_bytes:
                raise ValueError(
                    f"frame exceeds {self._max_frame_bytes} bytes "
                    "without a terminator"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise FrameClosed(
                        "peer closed mid-frame "
                        f"({len(self._buffer)} bytes buffered)"
                    )
                raise FrameClosed("peer closed the connection")
            self._buffer.extend(chunk)

    def settimeout(self, timeout: float | None) -> None:
        """Adjust the underlying socket's timeout (None = blocking)."""
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
