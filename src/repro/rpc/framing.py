"""Newline-delimited JSON frames over a stream socket.

The protocol's payloads are small dictionaries (page counts, ids,
stats), so JSON-per-line keeps the wire format debuggable with nothing
but ``socat``. Frames never contain raw newlines because JSON strings
escape them.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class FrameClosed(ConnectionError):
    """The peer closed the stream."""


class FrameStream:
    """Blocking frame reader/writer over a connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def send(self, frame: dict[str, Any]) -> None:
        """Serialize and send one frame (thread-safe per sendall)."""
        data = json.dumps(frame, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(data)

    def recv(self) -> dict[str, Any]:
        """Block until one complete frame arrives.

        Raises :class:`FrameClosed` on EOF and ``ValueError`` on
        malformed frames; honours the socket's timeout settings
        (``socket.timeout`` propagates).
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                frame = json.loads(line)
                if not isinstance(frame, dict):
                    raise ValueError(f"frame is not an object: {frame!r}")
                return frame
            chunk = self._sock.recv(65536)
            if not chunk:
                raise FrameClosed("peer closed the connection")
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
