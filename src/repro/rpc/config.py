"""Tunable timing/retry policy for the cross-process RPC plane.

Every timeout the protocol uses lives here instead of being a magic
constant inside the agent or server. One :class:`RpcConfig` is shared
by both sides (each reads the fields relevant to it), so a test or
benchmark can shrink the whole plane's time constants coherently.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule.

    ``attempts`` counts total tries (1 = no retry). ``attempts <= 0``
    means unlimited — used for the reconnect loop, which never gives
    up while the agent is alive.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff to sleep after 0-indexed try ``attempt``."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative: {attempt}")
        return min(
            self.base_delay * (self.multiplier ** attempt), self.max_delay
        )

    def delays(self) -> Iterator[float]:
        """The finite schedule of post-attempt backoffs."""
        for attempt in range(max(0, self.attempts - 1)):
            yield self.delay(attempt)


@dataclass(frozen=True)
class RpcConfig:
    """Timing and fault-tolerance knobs for agent and daemon.

    Agent side: ``connect_timeout`` bounds dialing plus the handshake,
    ``request_timeout`` is the per-attempt reply wait for one
    REQUEST/RELEASE round-trip, retried per ``request_retry``;
    exhausting the schedule declares the daemon unreachable (degraded
    mode). ``heartbeat_interval`` is the PING cadence (0 disables) and
    ``heartbeat_timeout`` the silence window after which the peer is
    presumed dead. ``reconnect`` enables the background redial loop
    driven by ``reconnect_backoff``.

    Daemon side: ``demand_timeout`` bounds one DEMAND/REPORT exchange;
    ``heartbeat_timeout`` reaps clients that pinged once and then went
    silent. ``demand_lock_timeout`` is the client's bounded SMA-lock
    wait while serving a demand (the deadlock backstop).
    """

    connect_timeout: float = 10.0
    request_timeout: float = 10.0
    request_retry: RetryPolicy = field(default_factory=RetryPolicy)
    demand_timeout: float = 5.0
    demand_lock_timeout: float = 2.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 5.0
    reconnect: bool = True
    reconnect_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            attempts=0, base_delay=0.05, multiplier=2.0, max_delay=2.0
        )
    )


DEFAULT_RPC_CONFIG = RpcConfig()


class ReplyCache:
    """Bounded id -> reply map making request handling idempotent.

    Retries and injected duplicates can deliver the same frame id
    twice; the receiver answers the duplicate from this cache instead
    of re-executing the (budget-mutating) operation. Single-threaded
    per connection: only that connection's handler/reader touches it.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, dict]" = OrderedDict()

    def get(self, key: Any) -> dict | None:
        return self._entries.get(key)

    def put(self, key: Any, reply: dict) -> None:
        self._entries[key] = reply
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
