"""Cross-process soft memory: the daemon over real sockets.

Everything else in this library runs the SMA↔SMD protocol in one
address space; this package runs it the way the paper deploys it — one
daemon per machine, many client *processes*, talking over a unix domain
socket. The wire protocol is exactly `docs/PROTOCOL.md`: REQUEST /
GRANT / DENY / RELEASE from clients, DEMAND / REPORT initiated by the
daemon, all as newline-delimited JSON frames.

* :class:`~repro.rpc.server.RpcDaemonServer` — wraps a
  :class:`~repro.daemon.smd.SoftMemoryDaemon`, serving many client
  connections; reclamation demands travel *to* clients mid-request.
* :class:`~repro.rpc.agent.SmaAgent` — runs inside a client process:
  implements the SMA's ``DaemonClient`` protocol over the socket and
  services incoming demands on a background thread.

The content of soft memory stays process-local (Python cannot map pages
across processes); what crosses the wire is the *protocol* — budgets,
demands, and reports — which is precisely what crosses the wire in the
paper's prototype too.
"""

from repro.rpc.agent import SmaAgent
from repro.rpc.config import ReplyCache, RetryPolicy, RpcConfig
from repro.rpc.faults import FaultInjector, FaultPlan, FaultyStream
from repro.rpc.framing import FrameStream
from repro.rpc.server import RpcDaemonServer

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultyStream",
    "FrameStream",
    "ReplyCache",
    "RetryPolicy",
    "RpcConfig",
    "RpcDaemonServer",
    "SmaAgent",
]
