"""The Redis dict, with its bucket elements in soft memory.

Real Redis stores the keyspace in a chained hash table with *two* tables
and incremental rehashing: when the load factor crosses 1, a second,
larger table is allocated and every subsequent operation migrates one
bucket, so rehashing never stalls the event loop. The paper's prototype
"modified this hash table to store the elements of its buckets in soft
memory, turning it into an SDS", while keys and values stayed in
traditional memory, deallocated via the reclamation callback.

:class:`SoftDict` reproduces that integration: chain elements are soft
allocations whose payload is a traditional-memory ``(key, value)``
record; reclamation drops the oldest entries first and the application
callback cleans up the traditional side.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.context import ReclaimCallback
from repro.core.pointer import SoftPtr
from repro.core.sma import SoftMemoryAllocator
from repro.sds.base import SoftDataStructure

#: Redis's DICT_HT_INITIAL_SIZE
INITIAL_SIZE = 4
#: buckets migrated per operation while rehashing (Redis migrates 1,
#: visiting at most 10 empty buckets per step)
REHASH_STEP_BUCKETS = 1
REHASH_MAX_EMPTY_VISITS = 10


class _Table:
    """One hash table: power-of-two bucket array of soft-pointer chains."""

    __slots__ = ("buckets", "size", "mask", "used")

    def __init__(self, size: int) -> None:
        assert size and (size & (size - 1)) == 0, "size must be a power of 2"
        self.buckets: list[list[SoftPtr] | None] = [None] * size
        self.size = size
        self.mask = size - 1
        self.used = 0


class SoftDict(SoftDataStructure):
    """Incrementally-rehashed chained dict with soft entries.

    ``entry_size`` is the soft bytes charged per entry when the caller
    does not pass an explicit ``size`` (the store passes key+value+
    overhead). Keys must be ``bytes`` (like Redis keys).
    """

    def __init__(
        self,
        sma: SoftMemoryAllocator,
        name: str = "keyspace",
        priority: int = 0,
        callback: ReclaimCallback | None = None,
        entry_size: int = 80,
    ) -> None:
        super().__init__(sma, name, priority, callback)
        if entry_size <= 0:
            raise ValueError(f"entry_size must be positive: {entry_size}")
        self._entry_size = entry_size
        self._ht0 = _Table(INITIAL_SIZE)
        self._ht1: _Table | None = None
        self._rehash_idx = 0
        #: alloc_id -> ptr in insertion (age) order, for oldest-first reclaim
        self._by_age: dict[int, SoftPtr] = {}
        self.rehashes_completed = 0

    # ------------------------------------------------------------------
    # hashing / rehashing machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _hash(key: bytes) -> int:
        # Python's SipHash over bytes, like Redis's SipHash over keys.
        return hash(key)

    @property
    def is_rehashing(self) -> bool:
        return self._ht1 is not None

    @property
    def table_sizes(self) -> tuple[int, int]:
        """(ht0 size, ht1 size or 0) — for tests and INFO output."""
        return self._ht0.size, self._ht1.size if self._ht1 else 0

    def _maybe_start_rehash(self) -> None:
        if self.is_rehashing:
            return
        if self._ht0.used < self._ht0.size:
            return
        new_size = self._ht0.size
        target = self._ht0.used * 2
        while new_size < target:
            new_size *= 2
        self._ht1 = _Table(new_size)
        self._rehash_idx = 0

    def _rehash_step(self) -> None:
        """Migrate up to REHASH_STEP_BUCKETS non-empty buckets to ht1."""
        if self._ht1 is None:  # attribute, not the property: hot path
            return
        migrated = 0
        empty_visits = 0
        while migrated < REHASH_STEP_BUCKETS:
            if self._rehash_idx >= self._ht0.size:
                self._finish_rehash()
                return
            chain = self._ht0.buckets[self._rehash_idx]
            if not chain:
                self._rehash_idx += 1
                empty_visits += 1
                if empty_visits >= REHASH_MAX_EMPTY_VISITS:
                    return
                continue
            for ptr in chain:
                key, __ = ptr.deref()
                slot = self._hash(key) & self._ht1.mask
                bucket = self._ht1.buckets[slot]
                if bucket is None:
                    bucket = self._ht1.buckets[slot] = []
                bucket.append(ptr)
            self._ht1.used += len(chain)
            self._ht0.used -= len(chain)
            self._ht0.buckets[self._rehash_idx] = None
            self._rehash_idx += 1
            migrated += 1
        if self._rehash_idx >= self._ht0.size:
            self._finish_rehash()

    def _finish_rehash(self) -> None:
        assert self._ht1 is not None
        assert self._ht0.used == 0
        self._ht0 = self._ht1
        self._ht1 = None
        self._rehash_idx = 0
        self.rehashes_completed += 1

    def _tables(self) -> Iterator[_Table]:
        yield self._ht0
        if self._ht1 is not None:
            yield self._ht1

    # ------------------------------------------------------------------
    # mapping operations
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: Any, size: int | None = None) -> SoftPtr:
        """Insert or overwrite; returns the entry's soft pointer."""
        return self.upsert(key, value, size)[0]

    def upsert(
        self, key: bytes, value: Any, size: int | None = None
    ) -> tuple[SoftPtr, Any | None]:
        """Insert or overwrite; returns ``(ptr, previous value or None)``.

        A same-size overwrite stores the new payload through the
        existing soft pointer — one pointer write, the way Redis swaps
        ``dictEntry->v`` on SET — instead of free + malloc + re-chain.
        Like a fresh insert, the overwrite refreshes the entry's age
        (re-inserting its age-index slot), preserving the oldest-first
        reclamation contract.
        """
        self._check_key(key)
        if self._ht1 is not None:  # guard inlined: hot path
            self._rehash_step()
        want = size or self._entry_size
        existing = self._find(key)
        old_value: Any | None = None
        if existing is not None:
            ptr, table, slot = existing
            __, old_value = ptr.deref()
            if ptr.size == want:
                ptr.store((key, value))
                del self._by_age[ptr.alloc_id]  # refresh age: now newest
                self._by_age[ptr.alloc_id] = ptr
                return ptr, old_value
            self._remove_ptr(ptr, table, slot)
            self._free(ptr)
        self._maybe_start_rehash()
        target = self._ht1 if self.is_rehashing else self._ht0
        assert target is not None
        try:
            ptr = self._alloc(want, (key, value))
        except Exception:
            if existing is not None:
                # The size-changing overwrite already unchained and
                # freed the old entry; a denied re-alloc means it is
                # lost. Report the loss through the reclamation
                # callback so the owner's ledgers (and any durability
                # log) record that the key is gone — otherwise memory
                # and disk would disagree about its existence.
                self.evictions += 1
                if self._context.callback is not None:
                    try:
                        self._context.callback((key, old_value))
                    except Exception:
                        self._context.callback_errors += 1
            raise
        slot = self._hash(key) & target.mask
        bucket = target.buckets[slot]
        if bucket is None:
            bucket = target.buckets[slot] = []
        bucket.append(ptr)
        target.used += 1
        self._by_age[ptr.alloc_id] = ptr
        return ptr, old_value

    def get(self, key: bytes, default: Any = None) -> Any:
        self._check_key(key)
        if self._ht1 is not None:  # guard inlined: hot path
            self._rehash_step()
        found = self._find(key)
        if found is None:
            return default
        __, value = found[0].deref()
        return value

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    def delete(self, key: bytes) -> bool:
        self._check_key(key)
        self._rehash_step()
        found = self._find(key)
        if found is None:
            return False
        ptr, table, slot = found
        self._remove_ptr(ptr, table, slot)
        del self._by_age[ptr.alloc_id]
        self._free(ptr)
        return True

    def __len__(self) -> int:
        return self._ht0.used + (self._ht1.used if self._ht1 else 0)

    def keys(self) -> Iterator[bytes]:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        key, __ = ptr.deref()
                        yield key

    def items(self) -> Iterator[tuple[bytes, Any]]:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        yield ptr.deref()

    def clear(self) -> None:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        self._free(ptr)
        self._ht0 = _Table(INITIAL_SIZE)
        self._ht1 = None
        self._rehash_idx = 0
        self._by_age.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, bytes):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")

    def _find(self, key: bytes) -> tuple[SoftPtr, _Table, int] | None:
        # straight-line probe of ht0 (and ht1 mid-rehash) — no tuple
        # or generator construction: this runs per command
        h = hash(key)
        table = self._ht0
        while True:
            slot = h & table.mask
            chain = table.buckets[slot]
            if chain:
                for ptr in chain:
                    entry_key, __ = ptr.deref()
                    if entry_key == key:
                        return ptr, table, slot
            ht1 = self._ht1
            if ht1 is None or table is ht1:
                return None
            table = ht1

    def _remove_ptr(self, ptr: SoftPtr, table: _Table, slot: int) -> None:
        chain = table.buckets[slot]
        assert chain is not None
        chain.remove(ptr)
        if not chain:
            table.buckets[slot] = None
        table.used -= 1

    # ------------------------------------------------------------------
    # reclaim contract: oldest entries first (the Redis integration)
    # ------------------------------------------------------------------

    def evict_one(self) -> bool:
        for alloc_id, ptr in self._by_age.items():
            if not ptr.allocation.pinned:
                key, __ = ptr.deref()
                found = self._find(key)
                assert found is not None and found[0] is ptr
                self._remove_ptr(ptr, found[1], found[2])
                del self._by_age[alloc_id]
                self._reclaim_ptr(ptr)
                return True
        return False

    def _free(self, ptr: SoftPtr) -> None:
        # Keep the age index consistent on every free path.
        self._by_age.pop(ptr.alloc_id, None)
        super()._free(ptr)

    def __repr__(self) -> str:
        return (
            f"<SoftDict {self.name!r} used={len(self)} "
            f"sizes={self.table_sizes} rehashing={self.is_rehashing}>"
        )
