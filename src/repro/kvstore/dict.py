"""The Redis dict, with its bucket elements in soft memory.

Real Redis stores the keyspace in a chained hash table with *two* tables
and incremental rehashing: when the load factor crosses 1, a second,
larger table is allocated and every subsequent operation migrates one
bucket, so rehashing never stalls the event loop. The paper's prototype
"modified this hash table to store the elements of its buckets in soft
memory, turning it into an SDS", while keys and values stayed in
traditional memory, deallocated via the reclamation callback.

:class:`SoftDict` reproduces that integration: chain elements are soft
allocations whose payload is a traditional-memory ``(key, value)``
record; reclamation drops the oldest entries first and the application
callback cleans up the traditional side.

With a :class:`~repro.kvstore.tier.TierConfig` enabled, eviction grows
a middle state: the oldest resident entry *demotes* — its value is
zlib-compressed and the soft allocation shrunk in place via
``SoftMemoryAllocator.soft_demote`` — instead of dropping. Only a
later pressure wave (or the tier watermark) truly drops compressed
entries, firing the usual reclamation callback; a read in between
*promotes* the entry back to residency, budget-gated like recovery
re-admission.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

from repro.core.context import ReclaimCallback
from repro.core.errors import SoftMemoryDegraded, SoftMemoryDenied
from repro.core.pointer import SoftPtr
from repro.core.sma import SoftMemoryAllocator
from repro.kvstore.tier import (
    TierConfig,
    TierStats,
    deflate_value,
    inflate_value,
)
from repro.kvstore.values import CompressedValue
from repro.sds.base import SoftDataStructure

#: Redis's DICT_HT_INITIAL_SIZE
INITIAL_SIZE = 4
#: buckets migrated per operation while rehashing (Redis migrates 1,
#: visiting at most 10 empty buckets per step)
REHASH_STEP_BUCKETS = 1
REHASH_MAX_EMPTY_VISITS = 10


class _Table:
    """One hash table: power-of-two bucket array of soft-pointer chains."""

    __slots__ = ("buckets", "size", "mask", "used")

    def __init__(self, size: int) -> None:
        assert size and (size & (size - 1)) == 0, "size must be a power of 2"
        self.buckets: list[list[SoftPtr] | None] = [None] * size
        self.size = size
        self.mask = size - 1
        self.used = 0


class SoftDict(SoftDataStructure):
    """Incrementally-rehashed chained dict with soft entries.

    ``entry_size`` is the soft bytes charged per entry when the caller
    does not pass an explicit ``size`` (the store passes key+value+
    overhead). Keys must be ``bytes`` (like Redis keys).
    """

    def __init__(
        self,
        sma: SoftMemoryAllocator,
        name: str = "keyspace",
        priority: int = 0,
        callback: ReclaimCallback | None = None,
        entry_size: int = 80,
        tier: TierConfig | None = None,
    ) -> None:
        super().__init__(sma, name, priority, callback)
        if entry_size <= 0:
            raise ValueError(f"entry_size must be positive: {entry_size}")
        self._entry_size = entry_size
        self._ht0 = _Table(INITIAL_SIZE)
        self._ht1: _Table | None = None
        self._rehash_idx = 0
        #: alloc_id -> ptr in insertion (age) order, for oldest-first reclaim
        self._by_age: dict[int, SoftPtr] = {}
        self.rehashes_completed = 0
        # -- compressed second-chance tier -----------------------------
        self.tier = tier or TierConfig()
        self.tier_stats = TierStats()
        #: alloc_id -> ptr of demoted entries, oldest demotion first
        self._compressed_age: dict[int, SoftPtr] = {}
        #: owner hooks: ledger/durability reactions to tier transitions.
        #: ``on_demoted(key, compressed)`` after a demotion lands,
        #: ``on_promoted(key, value, compressed)`` after a promotion.
        self.on_demoted: Callable[[bytes, CompressedValue], None] | None = None
        self.on_promoted: (
            Callable[[bytes, Any, CompressedValue], None] | None
        ) = None
        #: observability hook: promote-path latency in seconds
        self.observe_promote: Callable[[float], None] | None = None

    # ------------------------------------------------------------------
    # hashing / rehashing machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _hash(key: bytes) -> int:
        # Python's SipHash over bytes, like Redis's SipHash over keys.
        return hash(key)

    @property
    def is_rehashing(self) -> bool:
        return self._ht1 is not None

    @property
    def table_sizes(self) -> tuple[int, int]:
        """(ht0 size, ht1 size or 0) — for tests and INFO output."""
        return self._ht0.size, self._ht1.size if self._ht1 else 0

    def _maybe_start_rehash(self) -> None:
        if self.is_rehashing:
            return
        if self._ht0.used < self._ht0.size:
            return
        new_size = self._ht0.size
        target = self._ht0.used * 2
        while new_size < target:
            new_size *= 2
        self._ht1 = _Table(new_size)
        self._rehash_idx = 0

    def _rehash_step(self) -> None:
        """Migrate up to REHASH_STEP_BUCKETS non-empty buckets to ht1."""
        if self._ht1 is None:  # attribute, not the property: hot path
            return
        migrated = 0
        empty_visits = 0
        while migrated < REHASH_STEP_BUCKETS:
            if self._rehash_idx >= self._ht0.size:
                self._finish_rehash()
                return
            chain = self._ht0.buckets[self._rehash_idx]
            if not chain:
                self._rehash_idx += 1
                empty_visits += 1
                if empty_visits >= REHASH_MAX_EMPTY_VISITS:
                    return
                continue
            for ptr in chain:
                key, __ = ptr.deref()
                slot = self._hash(key) & self._ht1.mask
                bucket = self._ht1.buckets[slot]
                if bucket is None:
                    bucket = self._ht1.buckets[slot] = []
                bucket.append(ptr)
            self._ht1.used += len(chain)
            self._ht0.used -= len(chain)
            self._ht0.buckets[self._rehash_idx] = None
            self._rehash_idx += 1
            migrated += 1
        if self._rehash_idx >= self._ht0.size:
            self._finish_rehash()

    def _finish_rehash(self) -> None:
        assert self._ht1 is not None
        assert self._ht0.used == 0
        self._ht0 = self._ht1
        self._ht1 = None
        self._rehash_idx = 0
        self.rehashes_completed += 1

    def _tables(self) -> Iterator[_Table]:
        yield self._ht0
        if self._ht1 is not None:
            yield self._ht1

    # ------------------------------------------------------------------
    # mapping operations
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: Any, size: int | None = None) -> SoftPtr:
        """Insert or overwrite; returns the entry's soft pointer."""
        return self.upsert(key, value, size)[0]

    def upsert(
        self, key: bytes, value: Any, size: int | None = None
    ) -> tuple[SoftPtr, Any | None]:
        """Insert or overwrite; returns ``(ptr, previous value or None)``.

        A same-size overwrite stores the new payload through the
        existing soft pointer — one pointer write, the way Redis swaps
        ``dictEntry->v`` on SET — instead of free + malloc + re-chain.
        Like a fresh insert, the overwrite refreshes the entry's age
        (re-inserting its age-index slot), preserving the oldest-first
        reclamation contract.
        """
        self._check_key(key)
        if self._ht1 is not None:  # guard inlined: hot path
            self._rehash_step()
        want = size or self._entry_size
        existing = self._find(key)
        old_value: Any | None = None
        if existing is not None:
            ptr, table, slot = existing
            __, old_value = ptr.deref()
            if ptr.size == want and type(old_value) is not CompressedValue:
                ptr.store((key, value))
                del self._by_age[ptr.alloc_id]  # refresh age: now newest
                self._by_age[ptr.alloc_id] = ptr
                return ptr, old_value
            # (a demoted entry is never overwritten in place — its soft
            # size tracks the compressed bytes, not the incoming value;
            # the free below records it as a tier displacement)
            self._remove_ptr(ptr, table, slot)
            self._free(ptr)
        self._maybe_start_rehash()
        target = self._ht1 if self.is_rehashing else self._ht0
        assert target is not None
        try:
            ptr = self._alloc(want, (key, value))
        except Exception:
            if existing is not None:
                # The size-changing overwrite already unchained and
                # freed the old entry; a denied re-alloc means it is
                # lost. Report the loss through the reclamation
                # callback so the owner's ledgers (and any durability
                # log) record that the key is gone — otherwise memory
                # and disk would disagree about its existence.
                self.evictions += 1
                if self._context.callback is not None:
                    try:
                        self._context.callback((key, old_value))
                    except Exception:
                        self._context.callback_errors += 1
            raise
        slot = self._hash(key) & target.mask
        bucket = target.buckets[slot]
        if bucket is None:
            bucket = target.buckets[slot] = []
        bucket.append(ptr)
        target.used += 1
        self._by_age[ptr.alloc_id] = ptr
        return ptr, old_value

    def get(self, key: bytes, default: Any = None) -> Any:
        self._check_key(key)
        if self._ht1 is not None:  # guard inlined: hot path
            self._rehash_step()
        found = self._find(key)
        if found is None:
            return default
        __, value = found[0].deref()
        return value

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    def delete(self, key: bytes) -> bool:
        self._check_key(key)
        self._rehash_step()
        found = self._find(key)
        if found is None:
            return False
        ptr, table, slot = found
        self._remove_ptr(ptr, table, slot)
        self._free(ptr)  # maintains both age indexes
        return True

    def __len__(self) -> int:
        return self._ht0.used + (self._ht1.used if self._ht1 else 0)

    def keys(self) -> Iterator[bytes]:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        key, __ = ptr.deref()
                        yield key

    def items(self) -> Iterator[tuple[bytes, Any]]:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        yield ptr.deref()

    def clear(self) -> None:
        for table in self._tables():
            for chain in table.buckets:
                if chain:
                    for ptr in chain:
                        self._free(ptr)
        self._ht0 = _Table(INITIAL_SIZE)
        self._ht1 = None
        self._rehash_idx = 0
        self._by_age.clear()
        self._compressed_age.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, bytes):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")

    def _find(self, key: bytes) -> tuple[SoftPtr, _Table, int] | None:
        # straight-line probe of ht0 (and ht1 mid-rehash) — no tuple
        # or generator construction: this runs per command
        h = hash(key)
        table = self._ht0
        while True:
            slot = h & table.mask
            chain = table.buckets[slot]
            if chain:
                for ptr in chain:
                    entry_key, __ = ptr.deref()
                    if entry_key == key:
                        return ptr, table, slot
            ht1 = self._ht1
            if ht1 is None or table is ht1:
                return None
            table = ht1

    def _remove_ptr(self, ptr: SoftPtr, table: _Table, slot: int) -> None:
        chain = table.buckets[slot]
        assert chain is not None
        chain.remove(ptr)
        if not chain:
            table.buckets[slot] = None
        table.used -= 1

    # ------------------------------------------------------------------
    # reclaim contract: demote-before-drop, oldest entries first
    # ------------------------------------------------------------------

    def evict_one(self) -> bool:
        """Evict by the tier policy; the tier-off path is the paper's.

        Order with the tier enabled: (1) if the compressed tier is over
        its watermark, drop its oldest entry (a second-chance drop);
        (2) demote the oldest resident entry — or drop it outright when
        it does not compress; (3) with no resident victims left, a
        further pressure wave drops the oldest compressed entry.
        """
        tier = self.tier
        if tier.enabled:
            compressed = len(self._compressed_age)
            if compressed:
                total = self._ht0.used + (self._ht1.used if self._ht1 else 0)
                if compressed > tier.watermark_frac * total:
                    if self._drop_oldest_compressed():
                        return True
            for alloc_id, ptr in self._by_age.items():
                if not ptr.allocation.pinned:
                    return self._demote_or_drop(alloc_id, ptr)
            return self._drop_oldest_compressed()
        for alloc_id, ptr in self._by_age.items():
            if not ptr.allocation.pinned:
                key, __ = ptr.deref()
                found = self._find(key)
                assert found is not None and found[0] is ptr
                self._remove_ptr(ptr, found[1], found[2])
                del self._by_age[alloc_id]
                self._reclaim_ptr(ptr)
                return True
        # entries recovered in compressed form stay reclaimable even
        # with the tier switched off (no-op unless such entries exist)
        return self._drop_oldest_compressed()

    def _demote_or_drop(self, alloc_id: int, ptr: SoftPtr) -> bool:
        """Demote one resident victim, dropping it if compression fails."""
        key, __ = ptr.deref()
        if self.demote(key):
            return True
        if not ptr.allocation.valid:
            # demote() lost the extent swap and already accounted the
            # entry as dropped — nothing further to do
            return True
        # too small / incompressible: the victim drops like before
        found = self._find(key)
        assert found is not None and found[0] is ptr
        self.tier_stats.incompressible += 1
        self._remove_ptr(ptr, found[1], found[2])
        del self._by_age[alloc_id]
        self._reclaim_ptr(ptr)
        return True

    def demote(self, key: bytes) -> bool:
        """Demote one entry into the compressed tier right now.

        Used by the eviction policy and by recovery replay of demote
        records. Returns ``True`` when the entry ends up (or already
        was) compressed; ``False`` when it stays resident (absent,
        pinned, too small, or incompressible). A failed extent swap —
        vanishingly rare — loses the entry and accounts it exactly like
        a reclamation drop.
        """
        found = self._find(key)
        if found is None:
            return False
        ptr, table, slot = found
        __, value = ptr.deref()
        if type(value) is CompressedValue:
            return True
        if ptr.allocation.pinned:
            return False
        compressed = deflate_value(value, self.tier)
        if compressed is None:
            return False
        new_size = ptr.size - compressed.original_bytes + len(compressed.data)
        if not 0 < new_size < ptr.size:
            return False
        chain = table.buckets[slot]
        assert chain is not None
        index = chain.index(ptr)
        new_ptr = self._sma.soft_demote(ptr, new_size, (key, compressed))
        self._by_age.pop(ptr.alloc_id, None)
        if new_ptr is None:
            # placement failed even into the freed extent; the data is
            # gone — account it exactly like a reclamation drop
            self._remove_ptr(ptr, table, slot)
            self.evictions += 1
            callback = self._context.callback
            if callback is not None:
                try:
                    callback((key, value))
                except Exception:
                    self._context.callback_errors += 1
            return False
        chain[index] = new_ptr
        self._compressed_age[new_ptr.alloc_id] = new_ptr
        self._context.compressed_bytes += len(compressed.data)
        self.tier_stats.demotions += 1
        self.tier_stats.bytes_saved += (
            compressed.original_bytes - len(compressed.data)
        )
        if self.on_demoted is not None:
            # the owner's ledger/durability hook must not abort the
            # reclamation wave the demotion is servicing
            try:
                self.on_demoted(key, compressed)
            except Exception:
                self._context.callback_errors += 1
        return True

    def _drop_oldest_compressed(self) -> bool:
        for alloc_id, ptr in self._compressed_age.items():
            if ptr.allocation.pinned:
                continue
            key, compressed = ptr.deref()
            found = self._find(key)
            assert found is not None and found[0] is ptr
            self._remove_ptr(ptr, found[1], found[2])
            del self._compressed_age[alloc_id]
            self._context.compressed_bytes -= len(compressed.data)
            self.tier_stats.second_chance_drops += 1
            self._reclaim_ptr(ptr)
            return True
        return False

    def promote(self, key: bytes) -> Any | None:
        """Inflate a demoted entry back to residency; return its value.

        Re-admission of the inflated size is budget-gated exactly like
        recovery re-admission: on denial (or degraded daemon) the entry
        stays compressed and the caller still gets the transiently
        inflated value — the read is served either way, which is the
        hit-rate recovery the tier exists for.

        Returns ``None`` if the key is absent or not compressed.
        """
        found = self._find(key)
        if found is None:
            return None
        ptr, table, slot = found
        __, compressed = ptr.deref()
        if type(compressed) is not CompressedValue:
            return None
        started = time.perf_counter()
        value = inflate_value(compressed)
        new_size = ptr.size + compressed.original_bytes - len(compressed.data)
        alloc = ptr.allocation
        alloc.pins += 1  # re-admission may reclaim against this dict
        try:
            new_ptr = self._alloc(new_size, (key, value))
        except (SoftMemoryDenied, SoftMemoryDegraded):
            self.tier_stats.promotion_denials += 1
            if self.observe_promote is not None:
                self.observe_promote(time.perf_counter() - started)
            return value  # transient inflation; entry stays compressed
        finally:
            alloc.pins -= 1
        chain = table.buckets[slot]
        assert chain is not None
        chain[chain.index(ptr)] = new_ptr
        del self._compressed_age[alloc.alloc_id]
        self._by_age[new_ptr.alloc_id] = new_ptr
        self._context.compressed_bytes -= len(compressed.data)
        self.tier_stats.promotions += 1
        self._free(ptr)
        if self.on_promoted is not None:
            self.on_promoted(key, value, compressed)
        if self.observe_promote is not None:
            self.observe_promote(time.perf_counter() - started)
        return value

    def register_compressed(self, key: bytes) -> bool:
        """Adopt a just-inserted, already-compressed entry into the tier.

        Recovery re-admits snapshot entries that were demoted when the
        snapshot was taken; they arrive through :meth:`upsert` carrying
        a :class:`CompressedValue` and must live in the compressed age
        index (so pressure drops them and reads promote them). Counted
        as a demotion — the entry entered the compressed tier — which
        keeps the tier conservation identity exact after a restart.
        """
        found = self._find(key)
        if found is None:
            return False
        ptr = found[0]
        __, value = ptr.deref()
        if type(value) is not CompressedValue:
            return False
        if ptr.alloc_id in self._compressed_age:
            return True
        self._by_age.pop(ptr.alloc_id, None)
        self._compressed_age[ptr.alloc_id] = ptr
        self._context.compressed_bytes += len(value.data)
        self.tier_stats.demotions += 1
        self.tier_stats.bytes_saved += value.original_bytes - len(value.data)
        return True

    @property
    def compressed_entries(self) -> int:
        return len(self._compressed_age)

    @property
    def compressed_bytes(self) -> int:
        return self._context.compressed_bytes

    def _free(self, ptr: SoftPtr) -> None:
        # Keep both age indexes consistent on every free path.
        self._by_age.pop(ptr.alloc_id, None)
        if self._compressed_age.pop(ptr.alloc_id, None) is not None:
            # a client operation (DEL, overwrite, expiry, FLUSHALL)
            # removed a compressed entry: the tier loses it without a
            # drop or a promotion — a displacement, for the identity
            # demotions == promotions + drops + displacements + held
            __, compressed = ptr.deref()
            self._context.compressed_bytes -= len(compressed.data)
            self.tier_stats.displacements += 1
        super()._free(ptr)

    def __repr__(self) -> str:
        return (
            f"<SoftDict {self.name!r} used={len(self)} "
            f"sizes={self.table_sizes} rehashing={self.is_rehashing}>"
        )
