"""Master→replica replication of the CRC-framed AOF record stream.

The replication plane reuses ``persist/codec.py`` frames as the wire
format: a master serves a ``PSYNC``-style full sync (the same bytes a
``base-<g>.snap`` holds, shipped inline) plus the incremental record
stream — every write, delete, expiry, *and* soft-memory tombstone —
to N read-only replicas. Replicas track a byte offset into that
stream, reconnect with exponential backoff, and partial-resync from
the master's in-memory backlog ring when their offset is still
covered. See DESIGN.md §13.
"""

from repro.kvstore.repl.state import (
    DEFAULT_BACKLOG_CAPACITY,
    ReplicaFeed,
    ReplicationState,
)
from repro.kvstore.repl.link import ReplicaLink, SyncHandshake, apply_record

__all__ = [
    "DEFAULT_BACKLOG_CAPACITY",
    "ReplicaFeed",
    "ReplicaLink",
    "ReplicationState",
    "SyncHandshake",
    "apply_record",
]
