"""Shared replication state: roles, offsets, and the backlog ring.

One :class:`ReplicationState` hangs off ``store.repl`` (``None`` until
replication is engaged, so the standalone hot path pays one attribute
load and a ``None`` check per mutation — the same discipline as
``store.cluster``). It is the single source of truth both roles read:

* **master** — the ``log_*`` taps re-encode every mutation with the
  ``persist/codec.py`` encoders into a ``pending`` buffer; the event
  loop drains it once per select round (right after the AOF group
  commit) into the connected feeds *and* the in-memory backlog ring,
  from which a bounced replica can partial-resync instead of paying a
  full snapshot transfer.
* **replica** — :class:`~repro.kvstore.repl.link.ReplicaLink` advances
  the same offset as it applies the stream, and appends the applied
  bytes to its *own* backlog ring, so a promoted replica can serve
  partial resyncs to its ex-siblings from the same stream coordinates
  (psync2-lite: promotion keeps the replication id).

Offsets count stream bytes: ``master_repl_offset`` is the total ever
produced (master) or applied (replica); the backlog covers the byte
range ``[backlog_off, backlog_off + len(backlog))``. A partial resync
request for ``offset`` is satisfiable iff the replication ids match
and that offset falls inside (or exactly at the end of) the window.

Everything here is mutated under the owning server's execution lock
(or on its loop thread), so the state needs no lock of its own.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from repro.kvstore.persist.codec import (
    EXP_ABSOLUTE,
    EXP_KEEP,
    EXP_NONE,
    encode_delete,
    encode_demote,
    encode_expire,
    encode_flush,
    encode_persist,
    encode_tombstone,
    encode_write,
)
from repro.kvstore.values import Value

#: default backlog ring capacity (bytes); Redis ships 1 MiB too
DEFAULT_BACKLOG_CAPACITY = 1 * 1024 * 1024


def _new_replid() -> str:
    """A fresh 40-hex replication id (same shape as Redis)."""
    return f"{random.getrandbits(160):040x}"


@dataclass
class ReplicaFeed:
    """Master-side view of one connected replica."""

    addr: str
    ack_offset: int = 0
    last_ack_unix: float = 0.0
    connected: bool = True


class ReplicationState:
    """Roles, the stream offset, and the backlog ring (see module doc)."""

    def __init__(
        self,
        *,
        backlog_capacity: int = DEFAULT_BACKLOG_CAPACITY,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if backlog_capacity <= 0:
            raise ValueError("backlog_capacity must be positive")
        self.role = "master"
        self.replid = _new_replid()
        self.backlog_capacity = backlog_capacity
        self._clock = clock
        #: total stream bytes produced (master) / applied (replica)
        self.master_repl_offset = 0
        #: records encoded since the last :meth:`drain`
        self.pending = bytearray()
        #: the ring: stream bytes ``[backlog_off, backlog_off+len)``
        self.backlog = bytearray()
        self.backlog_off = 0
        #: flipped by the first PSYNC ever served; until then the
        #: ``log_*`` taps are inert so a server that never replicates
        #: pays nothing beyond the attribute check in the store
        self.stream_started = False
        #: master side: one entry per connected replica
        self.feeds: list[ReplicaFeed] = []
        # replica side
        self.master_host: str | None = None
        self.master_port: int | None = None
        self.link_status = "none"  # none|connecting|sync|up|down
        # counters (both roles; INFO # Replication)
        self.sync_full = 0  # full syncs served (master)
        self.sync_partial_ok = 0  # partial resyncs served (master)
        self.sync_partial_err = 0  # partials refused -> full (master)
        self.full_syncs_done = 0  # full syncs completed (replica)
        self.partial_syncs_done = 0  # partial resyncs completed (replica)
        self.reconnects = 0  # link re-dials after a drop (replica)
        self.applied_records = 0  # stream records applied (replica)
        self.apply_denied = 0  # budget-denied applies (future misses)
        self.tombstones_applied = 0  # T records applied (replica)

    # -- role transitions ----------------------------------------------

    def become_replica(self, host: str, port: int) -> None:
        self.role = "replica"
        self.master_host = host
        self.master_port = port
        self.link_status = "connect"
        self.feeds.clear()

    def become_master(self) -> None:
        """REPLICAOF NO ONE: keep replid + offset (psync2-lite), so
        ex-siblings of the same dead master can partial-resync from
        this node's backlog without a replid mismatch."""
        self.role = "master"
        self.master_host = None
        self.master_port = None
        self.link_status = "none"
        # the backlog already holds the applied stream tail in the same
        # coordinates; promotion only changes who produces new bytes
        self.stream_started = True

    def adopt(self, replid: str, offset: int) -> None:
        """Full sync landed: take the master's id and offset; the old
        backlog is in dead coordinates and is discarded."""
        self.replid = replid
        self.master_repl_offset = offset
        self.pending.clear()
        self.backlog.clear()
        self.backlog_off = offset

    # -- master-side log taps (mirror Persistence.log_*) ----------------

    def _deadline_ms(self, ex_relative: float) -> int:
        return int((self._clock() + ex_relative) * 1000)

    def log_write(
        self,
        key: bytes,
        value: Value,
        ex_relative: "float | None",
        keep_ttl: bool,
    ) -> None:
        if self.role != "master" or not self.stream_started:
            return
        out = self.pending
        before = len(out)
        if ex_relative is not None:
            encode_write(
                out, key, value, EXP_ABSOLUTE, self._deadline_ms(ex_relative)
            )
        elif keep_ttl:
            encode_write(out, key, value, EXP_KEEP)
        else:
            encode_write(out, key, value, EXP_NONE)
        self.master_repl_offset += len(out) - before

    def _log_keyed(self, encoder, key: bytes) -> None:
        if self.role != "master" or not self.stream_started:
            return
        out = self.pending
        before = len(out)
        encoder(out, key)
        self.master_repl_offset += len(out) - before

    def log_delete(self, key: bytes) -> None:
        self._log_keyed(encode_delete, key)

    def log_tombstone(self, key: bytes) -> None:
        """SMA reclamation (or a second-chance drop): the tombstone
        travels the stream so dropped-stays-dropped holds fleet-wide."""
        self._log_keyed(encode_tombstone, key)

    def log_demote(self, key: bytes) -> None:
        self._log_keyed(encode_demote, key)

    def log_persist(self, key: bytes) -> None:
        self._log_keyed(encode_persist, key)

    def log_expire(self, key: bytes, ex_relative: float) -> None:
        if self.role != "master" or not self.stream_started:
            return
        out = self.pending
        before = len(out)
        encode_expire(out, key, self._deadline_ms(ex_relative))
        self.master_repl_offset += len(out) - before

    def log_flush(self) -> None:
        if self.role != "master" or not self.stream_started:
            return
        out = self.pending
        before = len(out)
        encode_flush(out)
        self.master_repl_offset += len(out) - before

    # -- the backlog ring ----------------------------------------------

    def _append_backlog(self, data: bytes) -> None:
        backlog = self.backlog
        backlog += data
        overflow = len(backlog) - self.backlog_capacity
        if overflow > 0:
            del backlog[:overflow]
            self.backlog_off += overflow

    def drain(self) -> bytes:
        """Move ``pending`` into the backlog; return it for the feeds."""
        if not self.pending:
            return b""
        data = bytes(self.pending)
        self.pending.clear()
        self._append_backlog(data)
        return data

    def note_applied(self, raw: bytes, records: int) -> None:
        """Replica side: ``raw`` stream bytes were applied verbatim."""
        self.master_repl_offset += len(raw)
        self._append_backlog(raw)
        self.applied_records += records

    def can_partial(self, replid: str, offset: int) -> bool:
        """May a replica at ``offset`` resume from the backlog?"""
        if replid != self.replid or offset < 0:
            return False
        return (
            self.backlog_off
            <= offset
            <= self.backlog_off + len(self.backlog)
        )

    def backlog_since(self, offset: int) -> bytes:
        """The stream tail from ``offset`` (caller checked the range)."""
        return bytes(self.backlog[offset - self.backlog_off:])

    # -- feed registry (master) ----------------------------------------

    def register_feed(self, addr: str, ack_offset: int) -> ReplicaFeed:
        feed = ReplicaFeed(
            addr=addr, ack_offset=ack_offset, last_ack_unix=self._clock()
        )
        self.feeds.append(feed)
        return feed

    def drop_feed(self, feed: ReplicaFeed) -> None:
        feed.connected = False
        try:
            self.feeds.remove(feed)
        except ValueError:
            pass

    def note_ack(self, feed: ReplicaFeed, offset: int) -> None:
        if offset > feed.ack_offset:
            feed.ack_offset = offset
        feed.last_ack_unix = self._clock()

    def acked_by(self, offset: int) -> int:
        """How many connected replicas acked at least ``offset``."""
        return sum(1 for feed in self.feeds if feed.ack_offset >= offset)

    # -- INFO # Replication --------------------------------------------

    def info_lines(self) -> list[str]:
        lines = [
            f"role:{self.role}",
            f"replid:{self.replid}",
            f"master_repl_offset:{self.master_repl_offset}",
            f"repl_backlog_size:{len(self.backlog)}",
            f"repl_backlog_capacity:{self.backlog_capacity}",
            f"repl_backlog_first_byte_offset:{self.backlog_off}",
        ]
        if self.role == "master":
            lines += [
                f"connected_replicas:{len(self.feeds)}",
                f"sync_full:{self.sync_full}",
                f"sync_partial_ok:{self.sync_partial_ok}",
                f"sync_partial_err:{self.sync_partial_err}",
            ]
            for i, feed in enumerate(self.feeds):
                lag = self.master_repl_offset - feed.ack_offset
                lines.append(
                    f"replica{i}:addr={feed.addr},"
                    f"ack_offset={feed.ack_offset},lag={lag}"
                )
        else:
            lines += [
                f"master_host:{self.master_host}",
                f"master_port:{self.master_port}",
                f"master_link_status:{self.link_status}",
                f"full_syncs_done:{self.full_syncs_done}",
                f"partial_syncs_done:{self.partial_syncs_done}",
                f"reconnects:{self.reconnects}",
                f"applied_records:{self.applied_records}",
                f"apply_denied:{self.apply_denied}",
                f"tombstones_applied:{self.tombstones_applied}",
            ]
        return lines

    def __repr__(self) -> str:
        return (
            f"<ReplicationState {self.role} replid={self.replid[:8]}... "
            f"offset={self.master_repl_offset} feeds={len(self.feeds)}>"
        )
