"""The replica side: the sync handshake, record apply, and the link.

:class:`ReplicaLink` is one background thread per replica server. It
dials the master, sends ``PSYNC <replid> <offset>`` (``? -1`` when this
node has never synced), and parses the reply with the incremental
:class:`SyncHandshake`:

* ``+FULLRESYNC <replid> <offset>`` followed by a ``$<len>``-prefixed
  snapshot payload (the same bytes a ``base-<g>.snap`` holds, minus
  the file magic — sealed by the Z trailer) — the replica flushes its
  keyspace and re-admits every entry through its own SMA budget,
  exactly like recovery re-admission;
* ``+CONTINUE`` — the master still holds this offset in its backlog
  ring and resumes the raw stream mid-flight.

After the handshake the socket carries nothing but CRC-framed codec
records. The link scans complete frames out of its receive buffer,
applies them under the server's execution lock with persistence hooks
suppressed (the raw stream bytes are appended to the local AOF
verbatim instead — replaying an apply would double-log), advances the
replication offset by exactly the bytes applied, and acks with
``REPLCONF ACK <offset>`` after every applied batch and on idle
heartbeats. Budget denials count as future misses and never stop the
stream; tombstones always apply, so the replica's dropped-set never
diverges from the master's.

A dropped link (closed socket, torn frame, CRC failure) tears the
session down and redials with exponential backoff; every redial tries
partial resync first.
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING

from repro.core.errors import SoftMemoryDenied
from repro.kvstore.persist.codec import (
    EXP_ABSOLUTE,
    EXP_KEEP,
    HEADER_SIZE,
    MAX_RECORD_SIZE,
    CorruptRecord,
    decode_record,
    scan_frames,
)
from repro.kvstore.persist.snapshot import load_snapshot_bytes
from repro.kvstore.resp import encode_command
from repro.kvstore.wire import FRAME_HEADER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvstore.persist.engine import Persistence
    from repro.kvstore.repl.state import ReplicationState
    from repro.kvstore.store import DataStore

_RECV_SIZE = 65536
#: cap on any single handshake line (status or bulk-length header)
_MAX_LINE = 512


class HandshakeError(ConnectionError):
    """The master's PSYNC reply was an error or malformed."""


class SyncHandshake:
    """Incremental parser for the master's PSYNC reply.

    Feed it received bytes in any split (the every-byte-truncation
    property test depends on this); ``result`` stays ``None`` until the
    reply is complete, then becomes one of::

        ("CONTINUE", leftover_stream_bytes)
        ("FULLRESYNC", replid, offset, snapshot_payload, leftover)

    ``leftover`` is whatever stream bytes arrived in the same reads as
    the handshake — they belong to the record stream and must not be
    dropped. An ``-ERR`` line or malformed reply raises
    :class:`HandshakeError`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._full: tuple[str, int] | None = None
        self._payload_len: int | None = None
        self.result: tuple | None = None

    def feed(self, data: bytes) -> tuple | None:
        if self.result is not None:
            raise RuntimeError("handshake already complete")
        self._buf += data
        return self._parse()

    def _take_line(self) -> bytes | None:
        idx = self._buf.find(b"\r\n")
        if idx < 0:
            if len(self._buf) > _MAX_LINE:
                raise HandshakeError("oversized handshake line")
            return None
        line = bytes(self._buf[:idx])
        del self._buf[:idx + 2]
        return line

    def _parse(self) -> tuple | None:
        if self._full is None:
            line = self._take_line()
            if line is None:
                return None
            if line.startswith(b"-"):
                raise HandshakeError(
                    line[1:].decode("utf-8", "replace") or "sync refused"
                )
            if line == b"+CONTINUE":
                self.result = ("CONTINUE", bytes(self._buf))
                self._buf.clear()
                return self.result
            parts = line.split()
            if len(parts) != 3 or parts[0] != b"+FULLRESYNC":
                raise HandshakeError(f"unexpected sync reply {line!r}")
            try:
                replid = parts[1].decode("ascii")
                offset = int(parts[2])
            except (UnicodeDecodeError, ValueError):
                raise HandshakeError(
                    f"malformed FULLRESYNC line {line!r}"
                ) from None
            if len(replid) != 40 or offset < 0:
                raise HandshakeError(f"malformed FULLRESYNC line {line!r}")
            self._full = (replid, offset)
        if self._payload_len is None:
            line = self._take_line()
            if line is None:
                return None
            if not line.startswith(b"$"):
                raise HandshakeError(f"expected bulk payload, got {line!r}")
            try:
                size = int(line[1:])
            except ValueError:
                raise HandshakeError(
                    f"malformed bulk length {line!r}"
                ) from None
            if size < 0:
                raise HandshakeError(f"malformed bulk length {line!r}")
            self._payload_len = size
        if len(self._buf) < self._payload_len:
            return None
        payload = bytes(self._buf[:self._payload_len])
        leftover = bytes(self._buf[self._payload_len:])
        self._buf.clear()
        replid, offset = self._full
        self.result = ("FULLRESYNC", replid, offset, payload, leftover)
        return self.result


def apply_record(
    store: "DataStore",
    state: "ReplicationState",
    record: tuple,
    now_ms: int,
) -> None:
    """Apply one decoded stream record to the replica's store.

    The mirror of ``Persistence._apply_record`` with replication
    accounting: a budget-denied write is a future miss (counted, never
    raised — degraded-daemon mode keeps the stream moving), and a
    tombstone always lands so the dropped-set cannot diverge.
    """
    kind = record[0]
    if kind == "W":
        __, key, value, exp_kind, deadline = record
        if exp_kind == EXP_KEEP:
            deadline_ms = store._restore_deadline_ms(key, now_ms)
        elif exp_kind == EXP_ABSOLUTE:
            deadline_ms = deadline
        else:
            deadline_ms = None
        ex: float | None = None
        if deadline_ms is not None:
            ex = (deadline_ms - now_ms) / 1000.0
        try:
            store._restore_write(key, value, ex)
        except SoftMemoryDenied:
            state.apply_denied += 1
    elif kind == "T":
        state.tombstones_applied += 1
        store._restore_delete(record[1])
    elif kind == "D":
        store._restore_delete(record[1])
    elif kind == "E":
        store._restore_expire(record[1], (record[2] - now_ms) / 1000.0)
    elif kind == "P":
        store._restore_persist(record[1])
    elif kind == "M":
        store._restore_demote(record[1])
    elif kind == "F":
        store._restore_flush()
    # "Z" seals snapshots and never travels the incremental stream


class ReplicaLink(threading.Thread):
    """Background thread that keeps one replica synced to its master."""

    def __init__(
        self,
        store: "DataStore",
        state: "ReplicationState",
        lock: threading.Lock,
        *,
        persist: "Persistence | None" = None,
        connect_timeout: float = 5.0,
        max_backoff: float = 2.0,
    ) -> None:
        super().__init__(name="kv-replica-link", daemon=True)
        self._store = store
        self._state = state
        self._lock = lock
        self._persist = persist
        self._connect_timeout = connect_timeout
        self._max_backoff = max_backoff
        # not "_stop": Thread._stop() is a CPython-internal method
        self._stop_event = threading.Event()
        self._sock: socket.socket | None = None

    # -- lifecycle ------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the link to die without joining it.

        Safe to call while holding the server lock (the link thread may
        be blocked on that very lock, so joining here would deadlock —
        the link re-checks the stop event after every lock acquisition
        and unwinds).
        """
        self._stop_event.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def stop(self, timeout: float = 5.0) -> None:
        """Request stop and join. Never call while holding the lock."""
        self.request_stop()
        if self.is_alive():
            self.join(timeout)

    @property
    def stopped(self) -> bool:
        return self._stop_event.is_set()

    # -- the session loop ----------------------------------------------

    def run(self) -> None:
        state = self._state
        backoff = 0.05
        first = True
        while not self._stop_event.is_set():
            if not first:
                state.reconnects += 1
            first = False
            started = time.monotonic()
            try:
                self._sync_once()
            except (OSError, HandshakeError, CorruptRecord):
                pass
            finally:
                sock = self._sock
                self._sock = None
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            if self._stop_event.is_set():
                break
            state.link_status = "down"
            # a session that streamed for a while earned a fresh backoff
            if time.monotonic() - started > 2 * self._max_backoff:
                backoff = 0.05
            self._stop_event.wait(backoff)
            backoff = min(backoff * 2, self._max_backoff)

    def _sync_once(self) -> None:
        state = self._state
        host, port = state.master_host, state.master_port
        if host is None or port is None:
            raise ConnectionError("no master configured")
        state.link_status = "connecting"
        sock = socket.create_connection(
            (host, port), timeout=self._connect_timeout
        )
        self._sock = sock
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # a node that has synced before owns a stream position worth
        # offering; a fresh one can only ask for everything
        if state.full_syncs_done or state.partial_syncs_done:
            request = encode_command(
                b"PSYNC", state.replid, str(state.master_repl_offset)
            )
        else:
            request = encode_command(b"PSYNC", b"?", b"-1")
        sock.sendall(request)
        state.link_status = "sync"
        handshake = SyncHandshake()
        result = None
        while result is None:
            if self._stop_event.is_set():
                raise ConnectionError("link stopped")
            chunk = sock.recv(_RECV_SIZE)
            if not chunk:
                raise ConnectionError("master closed during handshake")
            result = handshake.feed(chunk)
        if result[0] == "FULLRESYNC":
            __, replid, offset, payload, leftover = result
            self._load_full_sync(replid, offset, payload)
        else:
            __, leftover = result
            with self._lock:
                if self._stop_event.is_set():
                    raise ConnectionError("link stopped")
                state.partial_syncs_done += 1
                state.link_status = "up"
        self._stream(sock, leftover)

    def _load_full_sync(
        self, replid: str, offset: int, payload: bytes
    ) -> None:
        loaded = load_snapshot_bytes(payload)
        if loaded is None:
            raise ConnectionError("invalid full-sync payload")
        entries, __ = loaded
        store = self._store
        state = self._state
        persist = self._persist
        now_ms = int(time.time() * 1000)
        with self._lock:
            if self._stop_event.is_set():
                raise ConnectionError("link stopped")
            suppress = (
                persist.hooks_suppressed() if persist is not None
                else nullcontext()
            )
            with suppress:
                store._restore_flush()
                for key, value, deadline_ms in entries:
                    ex: float | None = None
                    if deadline_ms is not None:
                        ex = (deadline_ms - now_ms) / 1000.0
                    try:
                        store._restore_write(key, value, ex)
                    except SoftMemoryDenied:
                        state.apply_denied += 1
            state.adopt(replid, offset)
            state.full_syncs_done += 1
            state.link_status = "up"
            if persist is not None:
                # seal the synced state as a local base-<g>.snap so a
                # replica restart recovers it without the master
                persist.checkpoint(background=False)

    def _stream(self, sock: socket.socket, initial: bytes) -> None:
        state = self._state
        store = self._store
        persist = self._persist
        buf = bytearray(initial)
        sock.settimeout(0.2)
        pending_first = bool(buf)
        while not self._stop_event.is_set():
            if not pending_first:
                try:
                    chunk = sock.recv(_RECV_SIZE)
                except socket.timeout:
                    self._send_ack(sock)  # idle heartbeat: lag signal
                    continue
                if not chunk:
                    raise ConnectionError("master closed the stream")
                buf += chunk
            pending_first = False
            if len(buf) < HEADER_SIZE:
                continue
            # bytearray slices are unhashable (hash-field keys), so the
            # scanner gets an immutable copy
            payloads, valid = scan_frames(bytes(buf))
            if payloads:
                records = [decode_record(p) for p in payloads]
                raw = bytes(buf[:valid])
                now_ms = int(time.time() * 1000)
                with self._lock:
                    if self._stop_event.is_set():
                        raise ConnectionError("link stopped")
                    suppress = (
                        persist.hooks_suppressed() if persist is not None
                        else nullcontext()
                    )
                    with suppress:
                        for record in records:
                            apply_record(store, state, record, now_ms)
                    state.note_applied(raw, len(records))
                    if persist is not None:
                        persist.append_raw(raw, len(records))
                if persist is not None:
                    persist.flush()
                del buf[:valid]
                self._send_ack(sock)
            if len(buf) >= HEADER_SIZE:
                length, __ = FRAME_HEADER.unpack_from(buf, 0)
                if (
                    length > MAX_RECORD_SIZE
                    or len(buf) >= HEADER_SIZE + length
                ):
                    # the full frame is here yet failed to scan: that is
                    # corruption on the wire, not a short read — resync
                    raise ConnectionError("corrupt replication stream")

    def _send_ack(self, sock: socket.socket) -> None:
        sock.sendall(
            encode_command(
                b"REPLCONF", b"ACK",
                str(self._state.master_repl_offset),
            )
        )
