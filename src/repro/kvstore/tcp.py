"""TCP front-ends: serve the store over real sockets.

:class:`~repro.kvstore.server.KvServer` is bytes-in/bytes-out; this
module puts socket machinery around it so the store speaks RESP over
TCP like real Redis. Two servers share one contract:

* :class:`EventLoopKvServer` (the default) mirrors Redis's actual
  concurrency model: a single-threaded ``selectors`` event loop doing
  non-blocking accept/read/write. Each readable event does
  ``recv_into`` the session parser's buffer (bytes are copied once,
  kernel to parser), executes *every* complete pipelined command under one lock
  acquisition, and encodes all replies straight into the connection's
  output buffer. Replies leave at the end of the select round — after
  the round's single AOF group commit — in one non-blocking send per
  connection; leftovers are written when the socket reports writable
  (write interest is toggled on and off). Slow clients that let their
  output buffer grow past a configurable limit are disconnected, like
  Redis's client-output-buffer-limits.
* :class:`ThreadedKvServer` is the classical thread-per-connection
  design the event loop replaces, kept selectable for A/B benchmarks:
  each connection's thread parses one command, takes the store lock,
  executes, and writes that command's reply — one lock acquisition and
  one socket write *per command*. Its accept and read loops block on a
  selector shared with a shutdown socketpair instead of spinning on
  0.2 s socket timeouts.

:func:`TcpKvServer` constructs either one behind a ``threaded`` flag,
so existing callers keep working and benchmarks can compare both.
"""

from __future__ import annotations

import select
import selectors
import socket
import threading
import time

from repro.kvstore.persist.snapshot import materialize_entries, snapshot_body
from repro.kvstore.repl import (
    DEFAULT_BACKLOG_CAPACITY,
    ReplicaLink,
    ReplicationState,
)
from repro.kvstore.resp import (
    OK,
    ProtocolError,
    RespError,
    encode_reply_into,
)
from repro.kvstore.server import KvServer
from repro.kvstore.store import DataStore
from repro.obs.plane import bind_server

_RECV_SIZE = 65536
#: default per-connection pending-output cap before the server declares
#: the client too slow and disconnects it (Redis: client-output-buffer-limit)
_OUTPUT_BUFFER_LIMIT = 8 * 1024 * 1024
#: replica feeds get a far larger allowance than interactive clients —
#: a full-sync payload alone can dwarf the client limit, and dropping a
#: briefly-slow replica forces a resync (Redis: the separate "slave"
#: client-output-buffer-limit class)
_REPL_OUTPUT_BUFFER_LIMIT = 64 * 1024 * 1024
#: WAIT 0 means "no deadline" in Redis; this server runs WAIT on the
#: loop thread, so an unreachable replica must not wedge it forever
_WAIT_MAX_BLOCK = 10.0


class _BaseTcpServer:
    """Shared listener setup, lifecycle, and counters."""

    def __init__(
        self,
        store: DataStore,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
    ) -> None:
        self.store = store
        self._lock = threading.Lock()  # serialized command execution
        self._listener = socket.create_server(
            (host, port), backlog=backlog, reuse_port=False
        )
        self.address: tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self.connections_served = 0
        self.commands_processed = 0

    def start(self) -> "_BaseTcpServer":
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "_BaseTcpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _Connection:
    """Per-connection state owned by the event loop."""

    __slots__ = (
        "sock", "session", "parser", "out", "pos", "want_write", "queued",
        "feed",
    )

    def __init__(self, sock: socket.socket, store: DataStore) -> None:
        self.sock = sock
        self.session = KvServer(store)  # per-connection input buffer
        self.parser = self.session.parser  # cached: one lookup per recv
        self.out = bytearray()  # encoded replies not yet on the wire
        self.pos = 0  # consumed prefix of ``out``
        self.want_write = False
        self.queued = False  # already on this round's flush queue
        self.feed = None  # ReplicaFeed once this conn served a PSYNC

    @property
    def pending(self) -> int:
        return len(self.out) - self.pos


class EventLoopKvServer(_BaseTcpServer):
    """Single-threaded selector event loop over one :class:`DataStore`.

    All parsing, execution, and encoding happens on the loop thread;
    the lock is held once per readable batch only so that out-of-band
    threads (soft-memory reclamation in tests and benchmarks, admin
    inspection) can coordinate with command execution.

    >>> # server = EventLoopKvServer(store).start()
    >>> # ... connect with TcpKvClient(server.address) ...
    >>> # server.stop()
    """

    def __init__(
        self,
        store: DataStore,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
        output_buffer_limit: int = _OUTPUT_BUFFER_LIMIT,
        shutdown_flush_timeout: float = 5.0,
        repl_backlog: int = DEFAULT_BACKLOG_CAPACITY,
        repl_output_buffer_limit: int = _REPL_OUTPUT_BUFFER_LIMIT,
    ) -> None:
        super().__init__(store, host, port, backlog)
        self.output_buffer_limit = output_buffer_limit
        self.shutdown_flush_timeout = shutdown_flush_timeout
        self.repl_backlog = repl_backlog
        self.repl_output_buffer_limit = repl_output_buffer_limit
        #: connections that serve a replica feed (subset of registered)
        self._feed_conns: list[_Connection] = []
        #: PSYNC requests deferred to this round's broadcast step
        self._psync_requests: list[tuple[_Connection, str, int]] = []
        self._link: ReplicaLink | None = None
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        # waker: stop() signals the (possibly idle, fully blocked) loop
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._selector.register(self._waker_r, selectors.EVENT_READ, "waker")
        self._thread: threading.Thread | None = None
        self._stopped = False
        self.clients_dropped = 0  # slow clients disconnected at the limit
        self.batches_executed = 0  # readable events that ran >= 1 command
        self.max_batch = 0  # largest command count in one batch
        self._obs = store.obs
        bind_server(store.obs.registry, self)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "EventLoopKvServer":
        """Begin serving (returns immediately; loop runs on a thread)."""
        self._thread = threading.Thread(
            target=self._loop, name="kv-event-loop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop, flush pending output, close every socket."""
        if self._stopped:
            return
        self._stopped = True
        link = self._link
        if link is not None:
            link.request_stop()
        self._stop.set()
        try:
            self._waker_w.send(b"\0")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=self.shutdown_flush_timeout + 5)
        if link is not None:
            link.stop()

    # -- the loop ------------------------------------------------------

    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                # with an everysec AOF, cap the block so a quiet server
                # still retires the deferred fsync within its window
                persist = self.store.persistence
                timeout = None
                if persist is not None and persist.aof_enabled:
                    if persist.config.appendfsync == "everysec":
                        timeout = persist.config.fsync_interval
                events = self._selector.select(timeout)
                flush_queue: list[_Connection] = []
                for key, mask in events:
                    if key.data is None:
                        self._accept()
                    elif key.data == "waker":
                        try:
                            self._waker_r.recv(64)
                        except OSError:
                            pass
                    else:
                        self._handle(key.data, mask, flush_queue)
                if persist is not None:
                    # group commit: ONE write(2) (and, under `always`,
                    # one fsync) covers every batch executed this round;
                    # an idle round retires the deferred everysec fsync
                    persist.flush()
                # replication broadcast rides between the group commit
                # and the reply drain: stream bytes for this round's
                # writes go to every feed, and deferred PSYNC replies
                # (snapshot or backlog tail) are served — after the
                # drain, so a brand-new feed cannot see bytes twice
                state = self.store.repl
                if state is not None and (
                    self._psync_requests or state.pending
                ):
                    self._broadcast(flush_queue)
                # every connection's replies for this round leave in
                # one send *after* the group commit, so an acked write
                # is a logged write and a pipelined batch is one
                # syscall on the wire, not one per readable event
                for conn in flush_queue:
                    conn.queued = False
                    if conn.sock.fileno() >= 0:
                        self._flush(conn)
        finally:
            self._shutdown()

    def _accept(self) -> None:
        while True:
            try:
                sock, __ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.connections_served += 1
            conn = _Connection(sock, self.store)
            conn.session.repl_hook = (
                lambda argv, out, conn=conn:
                self._repl_command(conn, argv, out)
            )
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _handle(
        self, conn: _Connection, mask: int, flush_queue: list[_Connection]
    ) -> None:
        if mask & selectors.EVENT_WRITE:
            # backlog from earlier rounds (already covered by earlier
            # commits) drains first, before this round generates more
            if not self._flush(conn):
                return
        if mask & selectors.EVENT_READ:
            if not self._on_readable(conn):
                return
        if not conn.queued and len(conn.out) > conn.pos:
            conn.queued = True
            flush_queue.append(conn)

    def _on_readable(self, conn: _Connection) -> bool:
        """Recv straight into the parser buffer, execute the batch.

        Returns False when the connection was closed. Replies are
        *not* flushed here — the loop sends each connection's round of
        replies in one syscall after the round's group commit.
        """
        if conn.feed is not None:
            # replica feed sockets carry nothing but REPLCONF ACKs;
            # they never dispatch commands, so no lock is needed
            return self._absorb_feed(conn)
        parser = conn.parser
        try:
            with parser.recv_view(_RECV_SIZE) as view:
                nbytes = conn.sock.recv_into(view)
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            self._close(conn)
            return False
        if not nbytes:
            self._close(conn)
            return False
        parser.commit_recv(nbytes)
        with self._lock:  # one acquisition for the whole pipelined batch
            executed = conn.session.pump(conn.out)
        if executed:
            self.commands_processed += executed
            self.batches_executed += 1
            if executed > self.max_batch:
                self.max_batch = executed
            self._obs.observe_batch(executed)
        return True

    def _flush(self, conn: _Connection) -> bool:
        """Write as much pending output as the socket accepts.

        Returns False when the connection was closed (slow-client limit
        or socket error). Toggles write interest so the selector only
        watches sockets that actually owe bytes.
        """
        out = conn.out
        pos = conn.pos
        send = conn.sock.send
        try:
            if pos == 0:
                # common case — nothing consumed yet: one send of the
                # whole buffer, no memoryview setup
                pos = send(out)
            if pos < len(out):
                with memoryview(out) as view:
                    while pos < len(out):
                        pos += send(view[pos:])
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            conn.pos = pos
            self._close(conn)
            return False
        if pos >= len(out):
            # fully drained: recycle the buffer, stop watching writable
            out.clear()
            conn.pos = 0
            if conn.want_write:
                conn.want_write = False
                self._selector.modify(conn.sock, selectors.EVENT_READ, conn)
            return True
        # partial write: keep the unsent tail, bound it, watch writable
        if pos > _RECV_SIZE:
            del out[:pos]
            pos = 0
        conn.pos = pos
        limit = (
            self.repl_output_buffer_limit
            if conn.feed is not None
            else self.output_buffer_limit
        )
        if len(out) - pos > limit:
            self.clients_dropped += 1
            self._close(conn)
            return False
        if not conn.want_write:
            conn.want_write = True
            self._selector.modify(
                conn.sock,
                selectors.EVENT_READ | selectors.EVENT_WRITE,
                conn,
            )
        return True

    def _close(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        if conn.feed is not None:
            state = self.store.repl
            if state is not None:
                state.drop_feed(conn.feed)
            try:
                self._feed_conns.remove(conn)
            except ValueError:
                pass
            conn.feed = None

    # -- replication ---------------------------------------------------

    def _ensure_repl(self) -> ReplicationState:
        """Create the replication state on first use (caller holds the
        lock or runs before the loop starts)."""
        state = self.store.repl
        if state is None:
            state = ReplicationState(backlog_capacity=self.repl_backlog)
            self.store.repl = state
        return state

    def enable_replication(self) -> ReplicationState:
        """Engage the replication plane eagerly (INFO shows it even
        before the first PSYNC). Safe to call repeatedly."""
        with self._lock:
            return self._ensure_repl()

    def replicaof(self, host: str, port: int) -> None:
        """Point this server at a master (``REPLICAOF host port``)."""
        with self._lock:
            self._replicaof_locked(host, port)

    def promote(self) -> None:
        """Make this server a master (``REPLICAOF NO ONE``)."""
        with self._lock:
            self._promote_locked()

    def _replicaof_locked(self, host: str, port: int) -> None:
        state = self._ensure_repl()
        link = self._link
        if link is not None:
            # never join under the lock — the link thread may be
            # blocked on this very lock; it observes the stop event
            # after every acquisition and unwinds
            link.request_stop()
        # a replica serves no feeds: drop them so their clients resync
        # against whoever is master now
        for conn in list(self._feed_conns):
            self._close(conn)
        state.become_replica(host, port)
        self._link = ReplicaLink(
            self.store,
            state,
            self._lock,
            persist=self.store.persistence,
        )
        self._link.start()

    def _promote_locked(self) -> None:
        link = self._link
        self._link = None
        if link is not None:
            link.request_stop()
        state = self._ensure_repl()
        state.become_master()

    def _repl_command(
        self, conn: _Connection, argv: list, out: bytearray
    ) -> None:
        """Session hook: replication commands that need the transport.

        Runs on the loop thread, under the execution lock (inside the
        session's pump). PSYNC replies are deferred to this round's
        broadcast step so the snapshot/backlog cut lands *after* the
        round's writes drain — the feed's first stream byte is exactly
        offset."""
        name = argv[0].upper()
        if name == b"PSYNC":
            if len(argv) != 3:
                encode_reply_into(
                    out,
                    RespError("ERR wrong number of arguments for 'psync'"),
                )
                return
            state = self.store.repl
            if state is not None and state.role == "replica":
                encode_reply_into(
                    out, RespError("ERR Can't SYNC while not master")
                )
                return
            state = self._ensure_repl()
            state.stream_started = True
            replid = bytes(argv[1]).decode("ascii", "replace")
            try:
                offset = int(argv[2])
            except ValueError:
                offset = -1
            self._psync_requests.append((conn, replid, offset))
            return  # reply deferred to _broadcast
        if name == b"REPLCONF":
            if len(argv) >= 2 and argv[1].upper() == b"ACK":
                return  # ACK gets no reply (Redis contract)
            encode_reply_into(out, OK)
            return
        if name == b"WAIT":
            self._handle_wait(argv, out)
            return
        if name == b"REPLICAOF":
            if len(argv) != 3:
                encode_reply_into(
                    out,
                    RespError(
                        "ERR wrong number of arguments for 'replicaof'"
                    ),
                )
                return
            if (
                argv[1].upper() == b"NO"
                and argv[2].upper() == b"ONE"
            ):
                self._promote_locked()
                encode_reply_into(out, OK)
                return
            try:
                port = int(argv[2])
            except ValueError:
                encode_reply_into(
                    out, RespError("ERR Invalid master port")
                )
                return
            host = bytes(argv[1]).decode("ascii", "replace")
            self._replicaof_locked(host, port)
            encode_reply_into(out, OK)

    def _handle_wait(self, argv: list, out: bytearray) -> None:
        """WAIT numreplicas timeout — block until enough acks arrive.

        Runs under the (non-reentrant) execution lock, so it must not
        re-enter any locking path: it pushes pending stream bytes to
        the feeds and pumps their ack sockets *directly* with select,
        bounded by the timeout. The loop thread stalls for the
        duration — the documented cost of read-your-writes here."""
        if len(argv) != 3:
            encode_reply_into(
                out, RespError("ERR wrong number of arguments for 'wait'")
            )
            return
        try:
            numreplicas = int(argv[1])
            timeout_ms = int(argv[2])
        except ValueError:
            encode_reply_into(
                out,
                RespError("ERR timeout is not an integer or out of range"),
            )
            return
        state = self.store.repl
        if state is None or state.role != "master":
            encode_reply_into(out, 0)
            return
        target = state.master_repl_offset
        # the waited-on writes may still sit in pending: ship them now
        data = state.drain()
        for conn in list(self._feed_conns):  # _flush may close + remove
            if data:
                conn.out += data
            if conn.pending and conn.sock.fileno() >= 0:
                self._flush(conn)
        budget = timeout_ms / 1000.0 if timeout_ms > 0 else _WAIT_MAX_BLOCK
        deadline = time.monotonic() + min(budget, _WAIT_MAX_BLOCK)
        while state.acked_by(target) < numreplicas:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            by_sock = {
                conn.sock: conn
                for conn in self._feed_conns
                if conn.sock.fileno() >= 0
            }
            if not by_sock:
                break
            try:
                readable, __, __ = select.select(
                    list(by_sock), [], [], min(0.05, remaining)
                )
            except (OSError, ValueError):
                break
            for sock in readable:
                self._absorb_feed(by_sock[sock])
        encode_reply_into(out, state.acked_by(target))

    def _broadcast(self, flush_queue: list[_Connection]) -> None:
        """Ship this round's stream bytes; answer deferred PSYNCs.

        Order matters: existing feeds take the drained bytes first,
        then new feeds are cut in at the post-drain offset — via the
        backlog tail (partial) or a fresh snapshot (full), either of
        which already covers those bytes."""
        with self._lock:
            state = self.store.repl
            if state is None:
                return
            data = state.drain() if state.role == "master" else b""
            if data:
                for conn in self._feed_conns:
                    if conn.sock.fileno() < 0:
                        continue
                    conn.out += data
                    if not conn.queued:
                        conn.queued = True
                        flush_queue.append(conn)
            if not self._psync_requests:
                return
            requests = self._psync_requests
            self._psync_requests = []
            if state.role != "master":
                # role flipped between request and broadcast: refuse
                for conn, __, __ in requests:
                    if conn.sock.fileno() >= 0:
                        encode_reply_into(
                            conn.out,
                            RespError("ERR Can't SYNC while not master"),
                        )
                        if not conn.queued:
                            conn.queued = True
                            flush_queue.append(conn)
                return
            for conn, replid, offset in requests:
                if conn.sock.fileno() < 0:
                    continue
                self._serve_psync(state, conn, replid, offset)
                if not conn.queued:
                    conn.queued = True
                    flush_queue.append(conn)

    def _serve_psync(
        self,
        state: ReplicationState,
        conn: _Connection,
        replid: str,
        offset: int,
    ) -> None:
        if state.can_partial(replid, offset):
            conn.out += b"+CONTINUE\r\n"
            conn.out += state.backlog_since(offset)
            state.sync_partial_ok += 1
            ack_init = offset
        else:
            if replid != "?":
                state.sync_partial_err += 1
            body = snapshot_body(
                materialize_entries(self.store, time.time()),
                int(time.time() * 1000),
            )
            conn.out += (
                f"+FULLRESYNC {state.replid} "
                f"{state.master_repl_offset}\r\n"
                f"${len(body)}\r\n"
            ).encode()
            conn.out += body
            state.sync_full += 1
            # nothing is acked until the replica says so: WAIT must not
            # count a replica that is still loading the snapshot
            ack_init = 0
        try:
            peer = "%s:%d" % conn.sock.getpeername()[:2]
        except OSError:
            peer = "?:?"
        conn.feed = state.register_feed(peer, ack_init)
        self._feed_conns.append(conn)

    def _absorb_feed(self, conn: _Connection) -> bool:
        """Drain REPLCONF ACKs from a feed socket (lock-free: feed
        state is only ever touched on the loop thread)."""
        parser = conn.parser
        try:
            with parser.recv_view(_RECV_SIZE) as view:
                nbytes = conn.sock.recv_into(view)
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            self._close(conn)
            return False
        if not nbytes:
            self._close(conn)
            return False
        parser.commit_recv(nbytes)
        state = self.store.repl
        feed = conn.feed
        try:
            frames = parser.parse_all()
        except ProtocolError:
            self._close(conn)  # a feed that talks garbage must resync
            return False
        for argv in frames:
            if (
                type(argv) is list
                and len(argv) == 3
                and argv[0].upper() == b"REPLCONF"
                and argv[1].upper() == b"ACK"
            ):
                try:
                    ack = int(argv[2])
                except ValueError:
                    continue
                if state is not None and feed is not None:
                    state.note_ack(feed, ack)
        return True

    # -- shutdown ------------------------------------------------------

    def _shutdown(self) -> None:
        """Flush pending output best-effort, then tear everything down."""
        persist = self.store.persistence
        if persist is not None:
            # commit before the reply drain below: if the loop died
            # mid-round, pending replies must not beat their log bytes
            persist.flush(force_fsync=True)
        conns = [
            key.data
            for key in list(self._selector.get_map().values())
            if isinstance(key.data, _Connection)
        ]
        deadline = time.monotonic() + self.shutdown_flush_timeout
        pending = [c for c in conns if c.pending]
        while pending and time.monotonic() < deadline:
            sockets = [c.sock for c in pending]
            try:
                __, writable, __ = select.select(
                    [], sockets, [], max(0.0, deadline - time.monotonic())
                )
            except (OSError, ValueError):
                break
            if not writable:
                break
            ready = {id(s) for s in writable}
            still = []
            for conn in pending:
                if id(conn.sock) in ready:
                    try:
                        with memoryview(conn.out) as view:
                            while conn.pos < len(conn.out):
                                conn.pos += conn.sock.send(view[conn.pos:])
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError:
                        conn.out.clear()
                        conn.pos = 0
                if conn.pending:
                    still.append(conn)
            pending = still
        for conn in conns:
            self._close(conn)
        persist = self.store.persistence
        if persist is not None:
            persist.flush(force_fsync=True)
        self._selector.close()
        self._listener.close()
        self._waker_r.close()
        self._waker_w.close()


class ThreadedKvServer(_BaseTcpServer):
    """Threaded TCP front-end over one :class:`DataStore`.

    Each connection gets its own :class:`KvServer` (and therefore its
    own RESP input buffer — interleaved partial commands from separate
    clients must never mix), while all command execution against the
    shared store is serialized by one lock. Serving is command-at-a-
    time: parse one command, execute it under the lock, write its
    reply — the classical blocking-server step the event loop's
    per-batch execution is measured against. Accept and read block on
    selectors shared with a shutdown socketpair, never on timeout
    polls.
    """

    def __init__(
        self,
        store: DataStore,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
    ) -> None:
        super().__init__(store, host, port, backlog)
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        # closing the write end wakes every selector blocked on the
        # read end (EOF is level-triggered readable, forever)
        self._stop_r, self._stop_w = socket.socketpair()
        self._stopped = False
        bind_server(store.obs.registry, self)

    def start(self) -> "ThreadedKvServer":
        """Begin accepting connections (returns immediately)."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kv-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, join workers."""
        if self._stopped:
            return
        self._stopped = True
        self._stop.set()
        self._stop_w.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._listener.close()
        for thread in self._conn_threads:
            thread.join(timeout=5)
        self._stop_r.close()
        persist = self.store.persistence
        if persist is not None:
            persist.flush(force_fsync=True)

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        with selectors.DefaultSelector() as sel:
            sel.register(self._listener, selectors.EVENT_READ)
            sel.register(self._stop_r, selectors.EVENT_READ)
            while not self._stop.is_set():
                ready = sel.select()  # blocks; woken by stop socketpair
                if self._stop.is_set():
                    break
                if not any(
                    key.fileobj is self._listener for key, __ in ready
                ):
                    continue
                try:
                    conn, __ = self._listener.accept()
                except OSError:
                    break
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.connections_served += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"kv-conn-{self.connections_served}",
                    daemon=True,
                )
                # prune finished workers so a long-lived server under
                # connection churn does not accumulate dead thread objects
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
                thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = KvServer(self.store)  # per-connection input buffer
        parser = session.parser
        try:
            with selectors.DefaultSelector() as sel:
                sel.register(conn, selectors.EVENT_READ)
                sel.register(self._stop_r, selectors.EVENT_READ)
                while not self._stop.is_set():
                    ready = sel.select()
                    if self._stop.is_set():
                        break
                    if not any(key.fileobj is conn for key, __ in ready):
                        continue
                    try:
                        with parser.recv_view(_RECV_SIZE) as view:
                            nbytes = conn.recv_into(view)
                    except OSError:
                        break
                    if not nbytes:
                        break
                    parser.commit_recv(nbytes)
                    persist = self.store.persistence
                    while True:
                        with self._lock:  # one acquisition per command
                            reply = session.pop_reply()
                        if reply is None:
                            break
                        if persist is not None:
                            # durability before the ack, like the
                            # event loop's per-batch flush
                            persist.flush()
                        self.commands_processed += 1
                        conn.sendall(reply)
        except OSError:
            pass
        finally:
            conn.close()


def TcpKvServer(
    store: DataStore,
    host: str = "127.0.0.1",
    port: int = 0,
    backlog: int = 128,
    *,
    threaded: bool = False,
    **options: object,
) -> EventLoopKvServer | ThreadedKvServer:
    """Build a TCP server for ``store``.

    The event loop is the default serving plane; pass ``threaded=True``
    to get the thread-per-connection baseline for A/B benchmarking.
    Extra keyword ``options`` (``output_buffer_limit``,
    ``shutdown_flush_timeout``, ``repl_backlog``,
    ``repl_output_buffer_limit``) configure the event loop and are
    rejected for the threaded baseline.
    """
    if threaded:
        if options:
            raise TypeError(
                f"threaded server takes no options {sorted(options)!r}"
            )
        return ThreadedKvServer(store, host, port, backlog)
    return EventLoopKvServer(store, host, port, backlog, **options)  # type: ignore[arg-type]


class TcpKvClient:
    """Blocking RESP client over a real socket.

    Replies are consumed strictly in FIFO order through an internal
    queue: when one ``recv`` delivers several parsed replies (batched
    or pipelined), the extras are kept for the following calls instead
    of being discarded — the client can never desync from the server.

    ``timeout`` bounds every read/write after the connection is up;
    ``connect_timeout`` bounds only the dial (it defaults to
    ``timeout``, but a supervisor health-checking a possibly-dead shard
    wants a short dial bound without throttling data reads).
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 5.0,
        connect_timeout: float | None = None,
    ) -> None:
        from collections import deque

        from repro.kvstore.resp import RespParser

        self._sock = socket.create_connection(
            address,
            timeout=timeout if connect_timeout is None else connect_timeout,
        )
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._parser = RespParser()
        self._replies: "deque[object]" = deque()
        self._closed = False

    def execute(self, *args: object) -> object:
        """Send one command, block for its reply."""
        from repro.kvstore.resp import encode_command

        self._sock.sendall(encode_command(*args))
        return self._next_reply()

    def execute_pipeline(self, *commands: tuple) -> list[object]:
        """Send several commands in one burst, collect all replies.

        RESP errors are returned in-place (not raised), like real
        pipelined clients do — one failed command must not discard the
        replies that follow it. Deep pipelines interleave sending with
        reading: a fire-the-whole-payload ``sendall`` deadlocks once
        both socket buffers fill with replies the client is not yet
        draining, so the payload is pushed with ``select`` and replies
        are parsed as they arrive.
        """
        from repro.kvstore.resp import encode_command

        if not commands:
            return []
        payload = b"".join(encode_command(*command) for command in commands)
        timeout = self._sock.gettimeout()
        sock = self._sock
        sent = 0
        sock.setblocking(False)
        try:
            with memoryview(payload) as view:
                while sent < len(payload):
                    readable, writable, __ = select.select(
                        [sock], [sock], [], timeout
                    )
                    if not readable and not writable:
                        raise TimeoutError("pipeline send timed out")
                    if readable:
                        with self._parser.recv_view(_RECV_SIZE) as rview:
                            nbytes = sock.recv_into(rview)
                        if not nbytes:
                            raise ConnectionError(
                                "server closed the connection"
                            )
                        self._parser.commit_recv(nbytes)
                    if writable:
                        try:
                            sent += sock.send(view[sent:])
                        except (BlockingIOError, InterruptedError):
                            pass
        finally:
            sock.settimeout(timeout)
        self._replies.extend(self._parser.parse_all())
        return [self._next_reply(raise_errors=False) for _ in commands]

    def _next_reply(self, *, raise_errors: bool = True) -> object:
        from repro.kvstore.resp import RespError

        while not self._replies:
            self._replies.extend(self._parser.parse_all())
            if self._replies:
                break
            with self._parser.recv_view(_RECV_SIZE) as view:
                nbytes = self._sock.recv_into(view)
            if not nbytes:
                raise ConnectionError("server closed the connection")
            self._parser.commit_recv(nbytes)
        reply = self._replies.popleft()
        if raise_errors and isinstance(reply, RespError):
            raise reply
        return reply

    def settimeout(self, timeout: float | None) -> None:
        """Rebound the read/write timeout of the live connection."""
        self._sock.settimeout(timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the socket; safe to call any number of times."""
        if self._closed:
            return
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "TcpKvClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
