"""TCP front-end: serve the store over real sockets.

:class:`~repro.kvstore.server.KvServer` is bytes-in/bytes-out; this
module puts a socket loop around it so the store speaks RESP over TCP
like real Redis (one thread accepting, one thread per connection —
the *store* itself stays single-threaded behind a lock, which is
exactly Redis's own concurrency model: parallel I/O, serialized
command execution).

Intended for the examples and integration tests; production deployment
of a Python store is not the point of a reproduction.
"""

from __future__ import annotations

import socket
import threading

from repro.kvstore.server import KvServer
from repro.kvstore.store import DataStore


class TcpKvServer:
    """Threaded TCP front-end over one :class:`DataStore`.

    Each connection gets its own :class:`KvServer` (and therefore its
    own RESP input buffer — interleaved partial commands from separate
    clients must never mix), while all command execution against the
    shared store is serialized by one lock.

    >>> # server = TcpKvServer(store).start()
    >>> # ... connect with TcpKvClient(server.address) ...
    >>> # server.stop()
    """

    def __init__(
        self,
        store: DataStore,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
    ) -> None:
        self.store = store
        self._lock = threading.Lock()  # serialized command execution
        self._listener = socket.create_server(
            (host, port), backlog=backlog, reuse_port=False
        )
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self.connections_served = 0

    def start(self) -> "TcpKvServer":
        """Begin accepting connections (returns immediately)."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kv-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, join workers."""
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._listener.close()
        for thread in self._conn_threads:
            thread.join(timeout=5)

    def __enter__(self) -> "TcpKvServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_served += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"kv-conn-{self.connections_served}",
                daemon=True,
            )
            # prune finished workers so a long-lived server under
            # connection churn does not accumulate dead thread objects
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.2)
        session = KvServer(self.store)  # per-connection input buffer
        try:
            while not self._stop.is_set():
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                with self._lock:
                    reply = session.feed(data)
                if reply:
                    conn.sendall(reply)
        finally:
            conn.close()


class TcpKvClient:
    """Blocking RESP client over a real socket.

    Replies are consumed strictly in FIFO order through an internal
    queue: when one ``recv`` delivers several parsed replies (batched
    or pipelined), the extras are kept for the following calls instead
    of being discarded — the client can never desync from the server.
    """

    def __init__(self, address: tuple[str, int], timeout: float = 5.0) -> None:
        from collections import deque

        from repro.kvstore.resp import RespParser

        self._sock = socket.create_connection(address, timeout=timeout)
        self._parser = RespParser()
        self._replies: "deque[object]" = deque()

    def execute(self, *args: object) -> object:
        """Send one command, block for its reply."""
        from repro.kvstore.resp import encode_command

        self._sock.sendall(encode_command(*args))
        return self._next_reply()

    def execute_pipeline(self, *commands: tuple) -> list[object]:
        """Send several commands in one write, collect all replies.

        RESP errors are returned in-place (not raised), like real
        pipelined clients do — one failed command must not discard the
        replies that follow it.
        """
        from repro.kvstore.resp import RespError, encode_command

        if not commands:
            return []
        self._sock.sendall(
            b"".join(encode_command(*command) for command in commands)
        )
        return [self._next_reply(raise_errors=False) for _ in commands]

    def _next_reply(self, *, raise_errors: bool = True) -> object:
        from repro.kvstore.resp import RespError

        while not self._replies:
            self._replies.extend(self._parser.parse_all())
            if self._replies:
                break
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self._parser.feed(data)
        reply = self._replies.popleft()
        if raise_errors and isinstance(reply, RespError):
            raise reply
        return reply

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpKvClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
