"""TCP front-end: serve the store over real sockets.

:class:`~repro.kvstore.server.KvServer` is bytes-in/bytes-out; this
module puts a socket loop around it so the store speaks RESP over TCP
like real Redis (one thread accepting, one thread per connection —
the *store* itself stays single-threaded behind a lock, which is
exactly Redis's own concurrency model: parallel I/O, serialized
command execution).

Intended for the examples and integration tests; production deployment
of a Python store is not the point of a reproduction.
"""

from __future__ import annotations

import socket
import threading

from repro.kvstore.server import KvServer
from repro.kvstore.store import DataStore


class TcpKvServer:
    """Threaded TCP front-end over one :class:`DataStore`.

    Each connection gets its own :class:`KvServer` (and therefore its
    own RESP input buffer — interleaved partial commands from separate
    clients must never mix), while all command execution against the
    shared store is serialized by one lock.

    >>> # server = TcpKvServer(store).start()
    >>> # ... connect with TcpKvClient(server.address) ...
    >>> # server.stop()
    """

    def __init__(
        self,
        store: DataStore,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
    ) -> None:
        self.store = store
        self._lock = threading.Lock()  # serialized command execution
        self._listener = socket.create_server(
            (host, port), backlog=backlog, reuse_port=False
        )
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self.connections_served = 0

    def start(self) -> "TcpKvServer":
        """Begin accepting connections (returns immediately)."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kv-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, join workers."""
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._listener.close()
        for thread in self._conn_threads:
            thread.join(timeout=5)

    def __enter__(self) -> "TcpKvServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.connections_served += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"kv-conn-{self.connections_served}",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.2)
        session = KvServer(self.store)  # per-connection input buffer
        try:
            while not self._stop.is_set():
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                with self._lock:
                    reply = session.feed(data)
                if reply:
                    conn.sendall(reply)
        finally:
            conn.close()


class TcpKvClient:
    """Blocking RESP client over a real socket."""

    def __init__(self, address: tuple[str, int], timeout: float = 5.0) -> None:
        from repro.kvstore.resp import RespParser

        self._sock = socket.create_connection(address, timeout=timeout)
        self._parser = RespParser()

    def execute(self, *args: object) -> object:
        """Send one command, block for its reply."""
        from repro.kvstore.resp import RespError, encode_command

        self._sock.sendall(encode_command(*args))
        while True:
            replies = self._parser.parse_all()
            if replies:
                reply = replies[0]
                if isinstance(reply, RespError):
                    raise reply
                return reply
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self._parser.feed(data)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpKvClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
