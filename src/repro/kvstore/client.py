"""Convenience client over a :class:`~repro.kvstore.server.KvServer`.

Encodes commands through the real RESP codec and decodes real RESP
replies, so every client call exercises the full wire path both ways
(the in-process equivalent of a TCP connection to the server).
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.resp import RespError, RespParser, encode_command
from repro.kvstore.server import KvServer


class KvClient:
    """Synchronous client; raises :class:`RespError` on error replies."""

    def __init__(self, server: KvServer) -> None:
        self._server = server
        self._parser = RespParser()

    def execute(self, *args: Any) -> Any:
        """Send one command and return its decoded reply."""
        raw = self._server.feed(encode_command(*args))
        self._parser.feed(raw)
        replies = self._parser.parse_all()
        if len(replies) != 1:
            raise RuntimeError(
                f"expected one reply, got {len(replies)}: {replies!r}"
            )
        reply = replies[0]
        if isinstance(reply, RespError):
            raise reply
        return reply

    def execute_pipeline(self, *commands: tuple) -> list[Any]:
        """Run several commands as one batch through ``feed_batch``.

        Error replies come back in-place (not raised), matching the TCP
        client's pipelining contract: one failed command must not
        discard the replies that follow it.
        """
        if not commands:
            return []
        request = bytearray()
        for command in commands:
            request += encode_command(*command)
        out = bytearray()
        self._server.feed_batch(request, out)
        self._parser.feed(out)
        replies = self._parser.parse_all()
        if len(replies) != len(commands):
            raise RuntimeError(
                f"expected {len(commands)} replies, got {len(replies)}"
            )
        return replies

    # -- sugar ---------------------------------------------------------

    def ping(self) -> str:
        return str(self.execute("PING"))

    def set(self, key: str, value: str | bytes, ex: int | None = None) -> bool:
        if ex is None:
            return str(self.execute("SET", key, value)) == "OK"
        return str(self.execute("SET", key, value, "EX", ex)) == "OK"

    def get(self, key: str) -> bytes | None:
        return self.execute("GET", key)

    def delete(self, *keys: str) -> int:
        return self.execute("DEL", *keys)

    def exists(self, *keys: str) -> int:
        return self.execute("EXISTS", *keys)

    def expire(self, key: str, seconds: int) -> bool:
        return bool(self.execute("EXPIRE", key, seconds))

    def ttl(self, key: str) -> int:
        return self.execute("TTL", key)

    def incr(self, key: str) -> int:
        return self.execute("INCR", key)

    def dbsize(self) -> int:
        return self.execute("DBSIZE")

    def flushall(self) -> bool:
        return str(self.execute("FLUSHALL")) == "OK"

    def keys(self, pattern: str = "*") -> list[bytes]:
        return self.execute("KEYS", pattern)

    def info(self) -> dict[str, str]:
        raw: bytes = self.execute("INFO")
        out: dict[str, str] = {}
        for line in raw.decode().splitlines():
            if ":" in line:
                key, __, value = line.partition(":")
                out[key] = value
        return out
