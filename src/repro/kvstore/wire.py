"""Shared precompiled wire codecs: struct frames and RESP fragments.

Two byte-level planes meet in the kvstore — the RESP serving plane
(``resp.py``) and the durability plane (``persist/codec.py``) — and
both pay per-operation encoding costs on the hot path. This module
holds the precompiled pieces they share so neither plane re-derives
them per call:

* :data:`U32` / :data:`U64` / :data:`FRAME_HEADER` — the
  ``struct.Struct`` codecs for the durability frame format
  (``u32 length | u32 crc | payload``) and its little-endian integer
  fields. Compiled once at import; ``pack``/``unpack_from`` on a
  precompiled Struct skips the per-call format-string parse.
* Interned RESP reply fragments — the complete wire encodings of the
  replies a server emits millions of times (``+OK``, null bulk, empty
  array/bulk, small integers) and the bulk-string length headers for
  short payloads. ``encode_reply_into`` appends these shared bytes
  objects directly instead of formatting a fresh one per reply.
"""

from __future__ import annotations

from struct import Struct

__all__ = [
    "BULK_HEADERS",
    "CRLF",
    "EMPTY_ARRAY_REPLY",
    "EMPTY_BULK_REPLY",
    "FRAME_HEADER",
    "INT_REPLIES",
    "NULL_BULK_REPLY",
    "OK_REPLY",
    "U32",
    "U64",
]

CRLF = b"\r\n"

#: little-endian frame integer codecs (shared with ``persist/codec.py``)
U32 = Struct("<I")
U64 = Struct("<Q")
#: the durability frame header: payload length, crc32(payload)
FRAME_HEADER = Struct("<II")

# ----------------------------------------------------------------------
# interned RESP reply fragments
# ----------------------------------------------------------------------

#: the single most common server reply, fully encoded
OK_REPLY = b"+OK\r\n"
#: null bulk string ($-1) — every GET miss
NULL_BULK_REPLY = b"$-1\r\n"
#: empty array (*0) — empty KEYS/HGETALL/... results
EMPTY_ARRAY_REPLY = b"*0\r\n"
#: empty bulk string ($0)
EMPTY_BULK_REPLY = b"$0\r\n\r\n"

#: fully-encoded integer replies for the small values INCR/DEL/EXISTS/
#: TTL-style commands overwhelmingly return (index = value)
INT_REPLIES = tuple(b":%d\r\n" % i for i in range(128))

#: bulk-string length headers ``$N\r\n`` for short payloads (index = N)
BULK_HEADERS = tuple(b"$%d\r\n" % i for i in range(256))
