"""The key-value store: keyspace, TTLs, and soft-memory integration.

This is the "Redis side" of the paper's section 5 experiment. The
keyspace is a :class:`~repro.kvstore.dict.SoftDict` (entries soft, keys
and values traditional); the store installs the reclamation callback
that "cleans up associated traditional memory for the reclaimed
entries" — the code the paper found dominating the 3.75 s reclamation.
Lookups of reclaimed keys return "not found", the caching contract the
paper describes (clients re-fetch from the database on miss).

Values are typed like Redis: strings (``bytes``), hashes, and lists.
Mutating a hash or list re-charges the entry's soft allocation, so the
soft footprint always tracks the data actually held.
"""

from __future__ import annotations

import fnmatch
import heapq
import random
import re
import time
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.core.sma import SoftMemoryAllocator
from repro.kvstore.dict import SoftDict
from repro.kvstore.tier import TierConfig
from repro.obs.plane import (
    KvObservability,
    bind_persistence,
    bind_sma,
    bind_store,
    bind_tier,
)
from repro.kvstore.values import (
    CompressedValue,
    Value,
    expect_type,
    type_name,
    value_bytes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvstore.cluster.state import ClusterState
    from repro.kvstore.persist.engine import Persistence
    from repro.kvstore.repl.state import ReplicationState


@lru_cache(maxsize=256)
def _glob_regex(pattern: bytes) -> "re.Pattern[bytes] | None":
    """Compile a Redis glob once; ``None`` means match-everything.

    The old path called :func:`fnmatch.fnmatchcase` per key, which
    re-derives the regex for every entry of a KEYS/SCAN sweep. Matching
    is byte-wise (latin-1 round-trip keeps the translation bijective
    for all 256 byte values), which both handles binary-unsafe keys the
    utf-8 decode used to choke on and matches Redis's own semantics of
    ``?`` consuming exactly one byte.
    """
    if pattern == b"*":
        return None
    translated = fnmatch.translate(pattern.decode("latin-1"))
    return re.compile(translated.encode("latin-1"))


@dataclass
class StoreConfig:
    """Store tuning knobs.

    ``entry_overhead_bytes`` models the dictEntry + robj headers Redis
    spends per pair: with the paper's 130 K pairs in 10 MiB, each entry
    averages ~80 bytes, so the default overhead assumes short keys and
    values.
    """

    entry_overhead_bytes: int = 56
    keyspace_priority: int = 0
    #: clock used for TTLs; swap in a SimClock's ``now`` for simulation
    time_fn: Callable[[], float] = field(default=time.monotonic)
    #: compressed second-chance tier policy (disabled reproduces the
    #: paper's plain keep/drop reclamation)
    tier: TierConfig = field(default_factory=TierConfig)


@dataclass
class StoreStats:
    """Operation and reclamation counters (INFO output)."""

    hits: int = 0
    misses: int = 0
    keys_set: int = 0
    keys_deleted: int = 0
    expired_keys: int = 0
    #: entries removed by soft memory reclamation (not by clients)
    reclaimed_keys: int = 0
    #: writes refused because the SMA denied (or degraded) the alloc
    oom_denials: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DataStore:
    """Single-threaded keyspace with Redis semantics."""

    def __init__(
        self,
        sma: SoftMemoryAllocator,
        config: StoreConfig | None = None,
        name: str = "redis",
    ) -> None:
        self.name = name
        self.config = config or StoreConfig()
        self._sma = sma
        self._dict = SoftDict(
            sma,
            name=f"{name}-keyspace",
            priority=self.config.keyspace_priority,
            callback=self._on_entry_reclaimed,
            tier=self.config.tier,
        )
        self._dict.on_demoted = self._on_entry_demoted
        self._dict.on_promoted = self._on_entry_promoted
        #: key -> absolute expiry deadline (traditional memory)
        self._expires: dict[bytes, float] = {}
        #: min-heap of (deadline, key) mirroring ``_expires``; entries go
        #: stale when a key is deleted/persisted/re-expired and are
        #: discarded lazily, so sweeps never scan the whole dict
        self._expiry_heap: list[tuple[float, bytes]] = []
        self.stats = StoreStats()
        #: bytes of keys+values held in traditional memory
        self.traditional_bytes = 0
        self._rng = random.Random(0)
        #: durability plane; None until :meth:`attach_persistence`
        self._persist: "Persistence | None" = None
        #: cluster topology; None (standalone) until :meth:`attach_cluster`.
        #: Public because the dispatcher reads it per command — one
        #: attribute load is the whole standalone-mode cost.
        self.cluster: "ClusterState | None" = None
        #: replication plane; None until a PSYNC is served or REPLICAOF
        #: runs. Public for the same reason as ``cluster`` — the
        #: dispatcher and the mutation taps read it per command, and
        #: one attribute load is the whole standalone-mode cost.
        self.repl: "ReplicationState | None" = None
        #: observability plane shared by every server wrapping this store
        self.obs = KvObservability(name=name)
        bind_store(self.obs.registry, self)
        bind_sma(self.obs.registry, sma)
        self._dict.observe_promote = bind_tier(self.obs.registry, self._dict)

    # ------------------------------------------------------------------
    # soft memory integration
    # ------------------------------------------------------------------

    def _entry_size(self, key: bytes, value: Value) -> int:
        return self.config.entry_overhead_bytes + len(key) + value_bytes(value)

    def _on_entry_reclaimed(self, payload: tuple[bytes, Value]) -> None:
        """Last-chance callback: free the traditional side of an entry.

        This mirrors the paper's Redis patch — the reclaimed soft element
        points at traditionally-allocated key and value, which must be
        released here or they leak.
        """
        key, value = payload
        self.traditional_bytes -= len(key) + value_bytes(value)
        self._expires.pop(key, None)
        self.stats.reclaimed_keys += 1
        if self._persist is not None:
            # dropped soft data must stay dropped across a restart
            self._persist.log_tombstone(key)
        if self.repl is not None:
            # ... and across the fleet: replicas get the tombstone too
            self.repl.log_tombstone(key)

    def _on_entry_demoted(self, key: bytes, compressed: CompressedValue) -> None:
        """Tier hook: an entry shrank to its compressed size.

        The value side of the traditional ledger shrinks with it, and
        the demotion is made durable so recovery re-admission is
        budget-gated at the *compressed* size.
        """
        self.traditional_bytes -= compressed.original_bytes - len(
            compressed.data
        )
        if self._persist is not None:
            self._persist.log_demote(key)
        if self.repl is not None:
            self.repl.log_demote(key)

    def _on_entry_promoted(
        self, key: bytes, value: Value, compressed: CompressedValue
    ) -> None:
        """Tier hook: an entry inflated back to residency.

        Promotion is deliberately not logged — a recovered-compressed
        entry inflates on its first read, byte-identical to this one.
        """
        self.traditional_bytes += compressed.original_bytes - len(
            compressed.data
        )

    @property
    def soft_bytes(self) -> int:
        """Live soft bytes behind the keyspace."""
        return self._dict.soft_bytes

    @property
    def soft_pages(self) -> int:
        return self._dict.soft_pages

    @property
    def keyspace(self) -> SoftDict:
        return self._dict

    @property
    def sma(self) -> SoftMemoryAllocator:
        return self._sma

    # ------------------------------------------------------------------
    # expiry
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self.config.time_fn()

    def _set_expiry(self, key: bytes, deadline: float) -> None:
        self._expires[key] = deadline
        heapq.heappush(self._expiry_heap, (deadline, key))
        self._maybe_compact_heap()

    def _maybe_compact_heap(self) -> None:
        """Rebuild the deadline heap once stale entries dominate.

        A churny workload (SET ... EX on hot keys, deletes, persists)
        strands stale entries; rebuilding at a 4× ratio keeps the heap
        O(live TTLs) for amortized O(1) per strand.
        """
        heap = self._expiry_heap
        if len(heap) > 64 and len(heap) > 4 * len(self._expires):
            heap[:] = [(d, k) for k, d in self._expires.items()]
            heapq.heapify(heap)

    def _check_expired(self, key: bytes) -> bool:
        """Lazy expiry: delete the key if its deadline passed."""
        deadline = self._expires.get(key)
        if deadline is None or self._now() < deadline:
            return False
        self._delete_raw(key)
        self.stats.expired_keys += 1
        return True

    def sweep_expired(self, limit: int | None = None) -> int:
        """Active expiry cycle: purge keys past their deadline.

        Pops the deadline heap instead of scanning ``_expires``, so a
        sweep costs O(expired · log n) rather than O(keys-with-ttl).
        Heap entries whose key was deleted, persisted, or re-expired in
        the meantime no longer match the authoritative dict and are
        dropped on sight (lazy invalidation). ``limit`` caps the number
        of keys purged per cycle Redis-style, so a periodic sweep in a
        serving loop cannot stall traffic behind a mass expiry; internal
        full sweeps (DBSIZE, KEYS, RANDOMKEY) leave it unbounded.
        """
        expires = self._expires
        heap = self._expiry_heap
        if not expires:
            heap.clear()  # everything left in the heap is stale
            return 0
        now = self._now()
        removed = 0
        while heap and heap[0][0] <= now:
            deadline, key = heapq.heappop(heap)
            if expires.get(key) != deadline:
                continue  # stale heap entry
            self._delete_raw(key)
            self.stats.expired_keys += 1
            removed += 1
            if limit is not None and removed >= limit:
                break
        self._maybe_compact_heap()
        return removed

    # ------------------------------------------------------------------
    # typed-value internals
    # ------------------------------------------------------------------

    def _read(self, key: bytes) -> Value | None:
        """Lazy-expiring raw read with hit/miss accounting.

        A read of a demoted entry promotes it back to residency (or
        serves a transient inflation when the budget denies the
        re-admission) — either way the read is a hit, which is the
        hit-rate recovery the second-chance tier exists for.
        """
        if self._expires and self._check_expired(key):
            self.stats.misses += 1
            return None
        value = self._dict.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        if type(value) is CompressedValue:
            value = self._dict.promote(key)
        self.stats.hits += 1
        return value

    def _peek(self, key: bytes) -> Value | None:
        """Lazy-expiring raw read without hit/miss accounting."""
        if self._check_expired(key):
            return None
        value = self._dict.get(key)
        if type(value) is CompressedValue:
            value = self._dict.promote(key)
        return value

    def _write(
        self, key: bytes, value: Value, *, ex: float | None, keep_ttl: bool
    ) -> None:
        """Insert or replace a value, keeping all ledgers consistent."""
        new_bytes = value_bytes(value)
        __, old = self._dict.upsert(
            key,
            value,
            size=self.config.entry_overhead_bytes + len(key) + new_bytes,
        )
        if old is not None:
            # same key: only the value side of the ledger moves
            self.traditional_bytes += new_bytes - value_bytes(old)
        else:
            self.traditional_bytes += len(key) + new_bytes
        if ex is not None:
            self._set_expiry(key, self._now() + ex)
        elif not keep_ttl:
            self._expires.pop(key, None)
        self.stats.keys_set += 1
        if self._persist is not None:
            # effect-based logging: INCR/APPEND/HSET all funnel here,
            # so the log carries resulting state and replays verbatim
            self._persist.log_write(key, value, ex, keep_ttl)
        if self.repl is not None:
            self.repl.log_write(key, value, ex, keep_ttl)

    def _recharge(self, key: bytes, value: Value) -> None:
        """Re-charge an entry after in-place mutation of its value."""
        self._write(key, value, ex=None, keep_ttl=True)

    def _read_typed(self, key: bytes, expected: type) -> Any | None:
        value = self._read(key)
        if value is None:
            return None
        return expect_type(value, expected)

    # ------------------------------------------------------------------
    # string commands
    # ------------------------------------------------------------------

    def set(
        self,
        key: bytes,
        value: bytes,
        *,
        ex: float | None = None,
        keep_ttl: bool = False,
    ) -> None:
        """SET: store ``value`` under ``key``; optional relative expiry."""
        # zero-copy serving hands large payloads in as memoryviews over
        # the parser's reusable buffer; the store retains values beyond
        # the batch, so this is the point where bytes must materialize
        if type(value) is memoryview:
            value = bytes(value)
        if type(key) is memoryview:
            key = bytes(key)
        self._check_types(key, value)
        self._write(key, value, ex=ex, keep_ttl=keep_ttl)

    def get(self, key: bytes) -> bytes | None:
        """GET: ``None`` for missing, expired, or *reclaimed* keys."""
        value = self._read(key)
        if value is None or type(value) is bytes:
            return value
        return expect_type(value, bytes)

    def getdel(self, key: bytes) -> bytes | None:
        """GETDEL: read and remove in one step."""
        value = self.get(key)
        if value is not None:
            self.delete(key)
        return value

    def getrange(self, key: bytes, start: int, end: int) -> bytes:
        """GETRANGE: substring with Redis's inclusive-end semantics."""
        raw = self.get(key) or b""
        if end == -1:
            return raw[start:]
        if end < -1:
            end += 1
            return raw[start:end] if end else raw[start:]
        return raw[start:end + 1]

    def setrange(self, key: bytes, offset: int, chunk: bytes) -> int:
        """SETRANGE: overwrite at ``offset``, zero-padding as needed."""
        if offset < 0:
            raise ValueError("offset is out of range")
        raw = self._peek(key)
        raw = expect_type(raw, bytes) if raw is not None else b""
        if len(raw) < offset:
            raw = raw + b"\x00" * (offset - len(raw))
        combined = raw[:offset] + chunk + raw[offset + len(chunk):]
        self._recharge(key, combined)
        return len(combined)

    def incrby(self, key: bytes, delta: int) -> int:
        raw = self.get(key)
        if raw is None:
            current = 0
        else:
            try:
                current = int(raw)
            except ValueError:
                raise ValueError(
                    "value is not an integer or out of range"
                ) from None
        current += delta
        self.set(key, str(current).encode(), keep_ttl=True)
        return current

    def append(self, key: bytes, suffix: bytes) -> int:
        raw = self.get(key) or b""
        combined = raw + suffix
        self.set(key, combined, keep_ttl=True)
        return len(combined)

    def strlen(self, key: bytes) -> int:
        raw = self.get(key)
        return len(raw) if raw is not None else 0

    # ------------------------------------------------------------------
    # hash commands
    # ------------------------------------------------------------------

    def hset(self, key: bytes, mapping: dict[bytes, bytes]) -> int:
        """HSET: set fields; returns the number of *new* fields."""
        table = self._peek(key)
        if table is None:
            table = {}
        else:
            table = dict(expect_type(table, dict))
        added = sum(1 for f in mapping if f not in table)
        table.update(mapping)
        self._recharge(key, table)
        return added

    def hget(self, key: bytes, fld: bytes) -> bytes | None:
        table = self._read_typed(key, dict)
        return table.get(fld) if table is not None else None

    def hdel(self, key: bytes, *fields: bytes) -> int:
        table = self._peek(key)
        if table is None:
            return 0
        table = dict(expect_type(table, dict))
        removed = 0
        for fld in fields:
            if fld in table:
                del table[fld]
                removed += 1
        if removed:
            if table:
                self._recharge(key, table)
            else:
                self._delete_raw(key)  # Redis removes empty hashes
        return removed

    def hlen(self, key: bytes) -> int:
        table = self._read_typed(key, dict)
        return len(table) if table is not None else 0

    def hexists(self, key: bytes, fld: bytes) -> bool:
        table = self._read_typed(key, dict)
        return table is not None and fld in table

    def hkeys(self, key: bytes) -> list[bytes]:
        table = self._read_typed(key, dict)
        return list(table) if table is not None else []

    def hvals(self, key: bytes) -> list[bytes]:
        table = self._read_typed(key, dict)
        return list(table.values()) if table is not None else []

    def hgetall(self, key: bytes) -> dict[bytes, bytes]:
        table = self._read_typed(key, dict)
        return dict(table) if table is not None else {}

    def hincrby(self, key: bytes, fld: bytes, delta: int) -> int:
        table = self._peek(key)
        table = dict(expect_type(table, dict)) if table is not None else {}
        try:
            current = int(table.get(fld, b"0"))
        except ValueError:
            raise ValueError("hash value is not an integer") from None
        current += delta
        table[fld] = str(current).encode()
        self._recharge(key, table)
        return current

    # ------------------------------------------------------------------
    # list commands
    # ------------------------------------------------------------------

    def _list_for_push(self, key: bytes) -> deque:
        value = self._peek(key)
        if value is None:
            return deque()
        return deque(expect_type(value, deque))

    def lpush(self, key: bytes, *values: bytes) -> int:
        items = self._list_for_push(key)
        for value in values:
            items.appendleft(value)
        self._recharge(key, items)
        return len(items)

    def rpush(self, key: bytes, *values: bytes) -> int:
        items = self._list_for_push(key)
        items.extend(values)
        self._recharge(key, items)
        return len(items)

    def _pop(self, key: bytes, left: bool) -> bytes | None:
        value = self._read(key)
        if value is None:
            return None
        items = deque(expect_type(value, deque))
        item = items.popleft() if left else items.pop()
        if items:
            self._recharge(key, items)
        else:
            self._delete_raw(key)  # Redis removes empty lists
        return item

    def lpop(self, key: bytes) -> bytes | None:
        return self._pop(key, left=True)

    def rpop(self, key: bytes) -> bytes | None:
        return self._pop(key, left=False)

    def llen(self, key: bytes) -> int:
        value = self._read_typed(key, deque)
        return len(value) if value is not None else 0

    def lrange(self, key: bytes, start: int, stop: int) -> list[bytes]:
        """LRANGE with Redis's inclusive-stop, negative-index semantics."""
        value = self._read_typed(key, deque)
        if value is None:
            return []
        items = list(value)
        if start < 0:
            start = max(0, len(items) + start)
        if stop < 0:
            stop = len(items) + stop
        return items[start:stop + 1]

    def lindex(self, key: bytes, index: int) -> bytes | None:
        value = self._read_typed(key, deque)
        if value is None:
            return None
        items = list(value)
        try:
            return items[index]
        except IndexError:
            return None

    # ------------------------------------------------------------------
    # key management
    # ------------------------------------------------------------------

    def delete(self, *keys: bytes) -> int:
        """DEL: remove keys; returns how many existed."""
        removed = 0
        for key in keys:
            if self._check_expired(key):
                continue
            if self._delete_raw(key):
                removed += 1
                self.stats.keys_deleted += 1
        return removed

    def _delete_raw(self, key: bytes) -> bool:
        value = self._dict.get(key)
        if value is None:
            return False
        self._dict.delete(key)
        self._expires.pop(key, None)
        self.traditional_bytes -= len(key) + value_bytes(value)
        if self._persist is not None:
            # expiry-driven deletes flow through here too: an expired
            # key is propagated as a delete, the way Redis logs DEL
            self._persist.log_delete(key)
        if self.repl is not None:
            self.repl.log_delete(key)
        return True

    def exists(self, *keys: bytes) -> int:
        return sum(
            1
            for key in keys
            if not self._check_expired(key) and key in self._dict
        )

    def type_of(self, key: bytes) -> bytes | None:
        """TYPE: b"string" / b"hash" / b"list", or None if missing."""
        value = self._peek(key)
        return type_name(value) if value is not None else None

    def rename(self, src: bytes, dst: bytes) -> None:
        """RENAME: move a value (and its TTL) to a new key."""
        value = self._peek(src)
        if value is None:
            raise KeyError("no such key")
        deadline = self._expires.get(src)
        self._delete_raw(src)
        ex = None if deadline is None else max(0.0, deadline - self._now())
        self._write(dst, value, ex=ex, keep_ttl=False)

    def renamenx(self, src: bytes, dst: bytes) -> bool:
        """RENAMENX: rename only if ``dst`` does not exist."""
        if self._peek(dst) is not None:
            return False
        self.rename(src, dst)
        return True

    def randomkey(self) -> bytes | None:
        """RANDOMKEY: a uniformly random live key (None when empty)."""
        self.sweep_expired()
        keys = list(self._dict.keys())
        return self._rng.choice(keys) if keys else None

    def expire(self, key: bytes, seconds: float) -> bool:
        if self._check_expired(key) or key not in self._dict:
            return False
        self._set_expiry(key, self._now() + seconds)
        if self._persist is not None:
            self._persist.log_expire(key, seconds)
        if self.repl is not None:
            self.repl.log_expire(key, seconds)
        return True

    def expireat(self, key: bytes, deadline: float) -> bool:
        """EXPIREAT: absolute deadline (store-clock seconds)."""
        if self._check_expired(key) or key not in self._dict:
            return False
        self._set_expiry(key, deadline)
        if self._persist is not None:
            self._persist.log_expire(key, deadline - self._now())
        if self.repl is not None:
            self.repl.log_expire(key, deadline - self._now())
        return True

    def ttl(self, key: bytes) -> int:
        """TTL in whole seconds; -2 missing key, -1 no expiry."""
        pttl = self.pttl(key)
        return pttl if pttl < 0 else max(0, round(pttl / 1000))

    def pttl(self, key: bytes) -> int:
        """PTTL in milliseconds; -2 missing key, -1 no expiry."""
        if self._check_expired(key) or key not in self._dict:
            return -2
        deadline = self._expires.get(key)
        if deadline is None:
            return -1
        return max(0, round((deadline - self._now()) * 1000))

    def persist(self, key: bytes) -> bool:
        if self._check_expired(key) or key not in self._dict:
            return False
        cleared = self._expires.pop(key, None) is not None
        if cleared:
            if self._persist is not None:
                self._persist.log_persist(key)
            if self.repl is not None:
                self.repl.log_persist(key)
        return cleared

    # ------------------------------------------------------------------
    # keyspace commands
    # ------------------------------------------------------------------

    def keys(self, pattern: bytes = b"*") -> list[bytes]:
        self.sweep_expired()
        regex = _glob_regex(bytes(pattern))
        if regex is None:
            return list(self._dict.keys())
        match = regex.match
        return [k for k in self._dict.keys() if match(k)]

    def scan(
        self,
        cursor: int,
        match: bytes | None = None,
        count: int = 10,
    ) -> tuple[int, list[bytes]]:
        """SCAN: cursor-based iteration over the keyspace.

        Simplified vs Redis: iterates a sorted snapshot, so keys added
        mid-scan at earlier positions may be missed (Redis makes the
        symmetric trade). Cursor 0 starts; returned cursor 0 ends.
        """
        if cursor < 0 or count <= 0:
            raise ValueError("invalid cursor or count")
        self.sweep_expired()
        ordered = sorted(self._dict.keys())
        window = ordered[cursor:cursor + count]
        next_cursor = cursor + count
        if next_cursor >= len(ordered):
            next_cursor = 0
        if match is not None:
            regex = _glob_regex(bytes(match))
            if regex is not None:
                matcher = regex.match
                window = [k for k in window if matcher(k)]
        return next_cursor, window

    def scan_iter(self) -> Iterator[bytes]:
        yield from self._dict.keys()

    def dbsize(self) -> int:
        self.sweep_expired()
        return len(self._dict)

    def flushall(self) -> None:
        self._dict.clear()
        self._expires.clear()
        self._expiry_heap.clear()
        self.traditional_bytes = 0
        if self._persist is not None:
            self._persist.log_flush()
        if self.repl is not None:
            self.repl.log_flush()

    # ------------------------------------------------------------------
    # durability plane
    # ------------------------------------------------------------------

    def attach_persistence(
        self, persistence: "Persistence", *, recover: bool = True
    ) -> "Persistence":
        """Bind a :class:`~repro.kvstore.persist.engine.Persistence`.

        Recovery (newest valid snapshot + AOF tail replay) runs before
        logging starts, so replayed mutations are not re-logged. After
        this returns, every mutation flows into the append-only log.
        """
        if self._persist is not None:
            raise RuntimeError("a persistence plane is already attached")
        self._persist = persistence  # hooks no-op while recovery replays
        try:
            persistence.attach(self, recover=recover)
        except Exception:
            self._persist = None
            raise
        bind_persistence(self.obs.registry, persistence)
        return persistence

    @property
    def persistence(self) -> "Persistence | None":
        return self._persist

    def attach_cluster(self, state: "ClusterState") -> "ClusterState":
        """Bind this store to one shard of a hash-slot cluster.

        From here on the dispatcher answers ``MOVED`` for keys outside
        the shard's slot range; see ``repro.kvstore.cluster``.
        """
        if self.cluster is not None:
            raise RuntimeError("a cluster topology is already attached")
        self.cluster = state
        return state

    def _restore_write(
        self, key: bytes, value: Value, ex: float | None
    ) -> None:
        """Replay one write. Delete-first, then insert through the soft
        allocator (the SMD budget gates re-admission): a denied alloc
        propagates with all ledgers clean and the key absent — the
        entry becomes a future cache miss, exactly like reclamation.
        Client-facing stats are not touched.
        """
        self._delete_raw(key)
        self._dict.upsert(key, value, size=self._entry_size(key, value))
        if type(value) is CompressedValue:
            # a snapshot carried this entry demoted: re-admission was
            # budget-gated at the compressed size, and it must live in
            # the compressed tier (drop under pressure, promote on read)
            self._dict.register_compressed(key)
        self.traditional_bytes += len(key) + value_bytes(value)
        if ex is not None:
            self._set_expiry(key, self._now() + ex)

    def _restore_delete(self, key: bytes) -> None:
        self._delete_raw(key)

    def _restore_demote(self, key: bytes) -> None:
        """Replay a demote record: re-compress the entry in place.

        Demotion only returns bytes to the heap, so replay never needs
        budget. With the tier disabled on this boot the record is
        skipped — the entry simply stays resident, which recovery's
        budget gate already allowed.
        """
        if self._dict.tier.enabled:
            self._dict.demote(key)

    def _restore_expire(self, key: bytes, seconds: float) -> None:
        if key in self._dict:
            self._set_expiry(key, self._now() + seconds)

    def _restore_persist(self, key: bytes) -> None:
        self._expires.pop(key, None)

    def _restore_flush(self) -> None:
        self._dict.clear()
        self._expires.clear()
        self._expiry_heap.clear()
        self.traditional_bytes = 0

    def _restore_deadline_ms(self, key: bytes, now_ms: int) -> int | None:
        """Existing TTL of ``key`` as absolute unix ms (EXP_KEEP replay)."""
        deadline = self._expires.get(key)
        if deadline is None:
            return None
        return now_ms + int((deadline - self._now()) * 1000)

    def memory_usage(self, key: bytes) -> int | None:
        """MEMORY USAGE: soft + traditional bytes of one key."""
        value = self._peek(key)
        if value is None:
            return None
        return (
            self._entry_size(key, value) + len(key) + value_bytes(value)
        )

    def info(self) -> dict[str, Any]:
        return {
            "keys": len(self._dict),
            "soft_bytes": self.soft_bytes,
            "soft_pages": self.soft_pages,
            "traditional_bytes": self.traditional_bytes,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": round(self.stats.hit_rate, 4),
            "expired_keys": self.stats.expired_keys,
            "reclaimed_keys": self.stats.reclaimed_keys,
            "keyspace_rehashing": self._dict.is_rehashing,
            "evictions": self._dict.evictions,
            "compressed_entries": self._dict.compressed_entries,
            "compressed_bytes": self._dict.compressed_bytes,
        }

    @staticmethod
    def _check_types(key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")

    def __repr__(self) -> str:
        return f"<DataStore {self.name!r} keys={len(self._dict)}>"
