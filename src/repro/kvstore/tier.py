"""The compressed second-chance tier: demote-before-drop machinery.

The paper's reclamation protocol is binary — a victim entry is either
resident or gone. This module adds the state in between: *demotion*
zlib-compresses the value bytes and re-admits the entry at compressed
size, so the reclamation wave still frees real budget (the extent
shrinks) while the data stays recoverable. Only a later pressure wave,
or the compressed-tier watermark, truly drops it; a read in between
*promotes* (inflates) it back to residency.

Wire format: the plaintext fed to zlib is the persistence codec's typed
value serialization (tag + chunks), so deflate/inflate round-trips all
three client-visible types with one shared codec and a demoted entry
can be written to snapshots/AOF without re-inflating.

Policy knobs live in :class:`TierConfig`; counters in
:class:`TierStats`. Both are dependency-free so `core` and `daemon`
layers can reason about the tier without importing the kvstore.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.kvstore.values import CompressedValue, Value

__all__ = [
    "TierConfig",
    "TierStats",
    "deflate_value",
    "inflate_value",
]


@dataclass(frozen=True)
class TierConfig:
    """Second-chance tier policy.

    ``enabled`` gates the whole mechanism (off reproduces the paper's
    plain keep/drop). ``min_value_bytes`` skips values too small to be
    worth a deflate call; ``min_ratio`` requires the compressed bytes to
    be at most that fraction of the original, else the entry is judged
    incompressible and dropped outright when victimized.
    ``watermark_frac`` bounds the tier: when more than that fraction of
    a dict's entries are already compressed, further evictions drop the
    oldest compressed entry (a second-chance drop) instead of demoting
    yet another resident.
    """

    enabled: bool = False
    min_value_bytes: int = 64
    min_ratio: float = 0.75
    watermark_frac: float = 0.5
    compress_level: int = 1

    def __post_init__(self) -> None:
        if self.min_value_bytes < 0:
            raise ValueError(
                f"min_value_bytes must be non-negative: {self.min_value_bytes}"
            )
        if not 0.0 < self.min_ratio <= 1.0:
            raise ValueError(f"min_ratio must be in (0, 1]: {self.min_ratio}")
        if not 0.0 < self.watermark_frac <= 1.0:
            raise ValueError(
                f"watermark_frac must be in (0, 1]: {self.watermark_frac}"
            )
        if not 0 <= self.compress_level <= 9:
            raise ValueError(
                f"compress_level must be 0..9: {self.compress_level}"
            )


@dataclass
class TierStats:
    """Lifecycle counters for one dict's second-chance tier.

    The conservation identity the obs soak asserts per phase::

        demotions == promotions + second_chance_drops
                     + displacements + still-compressed entries

    ``displacements`` covers compressed entries removed by the *client*
    (DEL, overwrite, expiry, FLUSHALL) rather than by pressure.
    """

    demotions: int = 0
    promotions: int = 0
    second_chance_drops: int = 0
    displacements: int = 0
    #: deflate declined (too small / incompressible) — victim dropped
    incompressible: int = 0
    #: promote re-admission denied by the soft budget; the read is still
    #: served from a transient inflation, the entry stays compressed
    promotion_denials: int = 0
    bytes_saved: int = 0  # original − compressed, summed over demotions


def _serialize(value: Value) -> tuple[bytes, bytes]:
    """Flatten a typed value to ``(codec kind tag, plaintext bytes)``."""
    # imported lazily to keep tier importable without the persist plane
    from repro.kvstore.persist.codec import _value_parts

    parts = _value_parts(value)
    return parts[0], b"".join(parts)


def deflate_value(value: Value, config: TierConfig) -> CompressedValue | None:
    """Compress ``value`` for demotion, or ``None`` if not worth it.

    ``None`` means the caller should fall back to dropping the victim:
    the value is below ``min_value_bytes``, compresses worse than
    ``min_ratio``, or is already compressed.
    """
    from repro.kvstore.values import value_bytes

    if type(value) is CompressedValue:
        return None
    original = value_bytes(value)
    if original < config.min_value_bytes:
        return None
    kind, plain = _serialize(value)
    data = zlib.compress(plain, config.compress_level)
    if len(data) > original * config.min_ratio:
        return None
    return CompressedValue(data, original, kind)


def inflate_value(compressed: CompressedValue) -> Value:
    """Decompress a demoted value back to its resident form."""
    from repro.kvstore.persist.codec import _decode_value

    plain = zlib.decompress(compressed.data)
    value, offset = _decode_value(plain, 0)
    if offset != len(plain):
        raise ValueError("trailing bytes in compressed value")
    return value
