"""Append-only log writer and tail-tolerant reader.

:class:`AofWriter` owns one incremental log file. Mutation hooks append
encoded records into an in-memory *write-behind* buffer (one
``bytearray`` append per record, no I/O on the command path); the
serving loop flushes the buffer once per pipelined batch, and the
fsync policy decides how often durability is actually bought:

* ``always``  — fsync on every flush (acked writes survive kill -9);
* ``everysec`` — fsync at most once per second (Redis's default
  trade: bounded loss window, near-zero fsync tax);
* ``no``      — never fsync; the OS flushes on its own schedule.

The writer tracks ``good_size`` — bytes known to have reached the file
intact. When a write fails midway (short write, ENOSPC), it rolls the
file back to ``good_size`` with ``truncate`` so a retried flush cannot
leave a duplicated half-record in the middle of the log; if even the
rollback fails, the dirty tail is left for recovery's CRC scan to cut
off. Either way the pending buffer is retained and retried — an I/O
error never drops acknowledged mutations silently.

:func:`load_aof` reads a log back: it scans frames until the first
torn or CRC-corrupt one, decodes the valid prefix, and (optionally)
truncates the file at the last valid record so the next writer appends
onto a clean tail. Garbage never raises.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Protocol

from repro.kvstore.persist.codec import (
    CorruptRecord,
    decode_record,
    scan_frames,
)

FSYNC_POLICIES = ("always", "everysec", "no")


class BinaryFile(Protocol):
    """What the writer needs from a file — real or fault-injected."""

    def write(self, data: bytes) -> int: ...

    def fsync(self) -> None: ...

    def truncate(self, size: int) -> None: ...

    def close(self) -> None: ...


class RealFile:
    """Thin ``os``-level file: append position, explicit fsync/truncate."""

    def __init__(self, path: str) -> None:
        self._fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        os.lseek(self._fd, 0, os.SEEK_END)

    def write(self, data: bytes) -> int:
        return os.write(self._fd, data)

    def fsync(self) -> None:
        os.fsync(self._fd)

    def truncate(self, size: int) -> None:
        os.ftruncate(self._fd, size)
        os.lseek(self._fd, size, os.SEEK_SET)

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass


FileFactory = Callable[[str], BinaryFile]


class AofWriter:
    """Write-behind appender for one incremental log file."""

    def __init__(
        self,
        path: str,
        *,
        fsync_policy: str = "everysec",
        fsync_interval: float = 1.0,
        file_factory: FileFactory = RealFile,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync_policy!r}")
        self.path = path
        self.fsync_policy = fsync_policy
        self.fsync_interval = fsync_interval
        self._clock = clock
        self._file: BinaryFile | None = file_factory(path)
        self._pending = bytearray()
        #: bytes known to be intact in the file (resume point on error)
        self.good_size = os.path.getsize(path) if os.path.exists(path) else 0
        #: bytes covered by the last successful fsync — read-only
        #: batches must not pay for fsyncs of nothing
        self._synced_size = self.good_size
        self._last_fsync = clock()
        self.records_appended = 0
        self.fsyncs = 0
        self.fsync_errors = 0
        self.write_errors = 0
        #: a failed write whose rollback also failed: the file tail is
        #: unverified and only recovery's CRC scan can clean it
        self.dirty_tail = False

    @property
    def pending_bytes(self) -> int:
        return len(self._pending)

    @property
    def buffer(self) -> bytearray:
        """The write-behind buffer mutation hooks encode into."""
        return self._pending

    def note_records(self, count: int) -> None:
        """Account records encoded directly into :attr:`buffer`."""
        self.records_appended += count

    def append(self, record: bytes) -> None:
        """Queue one already-framed record (slow path, tests/tools)."""
        self._pending += record
        self.records_appended += 1

    # ------------------------------------------------------------------

    def flush(self, *, force_fsync: bool = False) -> bool:
        """Push the pending buffer to the file, fsync per policy.

        Returns True when the pending buffer fully reached the file.
        On a write error the file is rolled back to the last known-good
        size and the buffer is kept for the next flush.
        """
        file = self._file
        if file is None:
            return not self._pending
        if self._pending:
            data = bytes(self._pending)
            written = 0
            try:
                while written < len(data):
                    written += file.write(data[written:])
            except OSError:
                self.write_errors += 1
                # Roll back to the clean prefix so a retry cannot leave
                # half a record buried mid-file. The pending buffer is
                # untouched: nothing acknowledged is dropped.
                try:
                    file.truncate(self.good_size)
                except OSError:
                    self.dirty_tail = True
                return False
            self.good_size += len(data)
            self._pending.clear()
        unsynced = self.good_size > self._synced_size
        if force_fsync:
            if unsynced:
                self._fsync(file)
        elif self.fsync_policy == "always":
            if unsynced:
                self._fsync(file)
        elif self.fsync_policy == "everysec":
            now = self._clock()
            if unsynced and now - self._last_fsync >= self.fsync_interval:
                self._fsync(file)
        return True

    def _fsync(self, file: BinaryFile) -> None:
        try:
            file.fsync()
            self.fsyncs += 1
            self._synced_size = self.good_size
        except OSError:
            self.fsync_errors += 1
        self._last_fsync = self._clock()

    def close(self, *, flush: bool = True) -> None:
        """Flush (with fsync) and close. Idempotent."""
        file = self._file
        if file is None:
            return
        if flush:
            self.flush(force_fsync=True)
        self._file = None
        file.close()

    @property
    def closed(self) -> bool:
        return self._file is None

    def __repr__(self) -> str:
        return (
            f"<AofWriter {self.path!r} good={self.good_size}B "
            f"pending={len(self._pending)}B policy={self.fsync_policy}>"
        )


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def load_aof(
    path: str, *, truncate: bool = True
) -> tuple[list[tuple], int]:
    """Read a log file; return ``(records, truncated_bytes)``.

    Scans the frame stream up to the first torn or corrupt frame; every
    byte past that point counts as truncated. A frame whose CRC passes
    but whose payload fails to decode also ends the valid prefix (it
    can only come from a logic bug or hand-edited bytes, and replaying
    past it would risk phantom state). With ``truncate`` the file is
    physically cut back to the valid prefix so subsequent appends
    continue from a clean tail. A missing file is an empty log.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return [], 0
    payloads, valid_size = scan_frames(data)
    records: list[tuple] = []
    for index, payload in enumerate(payloads):
        try:
            records.append(decode_record(payload))
        except CorruptRecord:
            # recompute the prefix that ends just before this payload
            valid_size = _prefix_size(payloads[:index])
            break
    if truncate and valid_size < len(data):
        _truncate_file(path, valid_size)
    return records, len(data) - valid_size


def _prefix_size(payloads: list[bytes]) -> int:
    from repro.kvstore.persist.codec import HEADER_SIZE

    return sum(HEADER_SIZE + len(p) for p in payloads)


def _truncate_file(path: str, size: int) -> None:
    try:
        fd = os.open(path, os.O_RDWR)
    except OSError:
        return
    try:
        os.ftruncate(fd, size)
    except OSError:
        pass
    finally:
        os.close(fd)
