"""The persistence engine: checkpoints, recovery, and the AOF plumbing.

One :class:`Persistence` instance owns one data directory and attaches
to one :class:`~repro.kvstore.store.DataStore`. On-disk layout::

    <dir>/base-<g>.snap   point-in-time snapshot: state before incr-<g>
    <dir>/incr-<g>.aof    append-only log of everything after base-<g>

Generations make the naming convention the manifest: checkpoint ``g``
switches appends to a fresh ``incr-<g>.aof`` *first* (under the
caller's serialization, so the switch point is exact), then serializes
``base-<g>.snap``; until the snapshot lands, recovery still finds
``base-<g-1>`` + ``incr-<g-1>`` + ``incr-<g>`` — a contiguous history.
Recovery therefore: picks the newest *valid* snapshot, replays the
contiguous run of incremental logs from that generation upward, and
tolerates a torn or corrupt tail by clean truncation (a corrupt record
*mid*-history ends replay there: later bytes might depend on the lost
ones, so they are discarded rather than risk phantom state).

Soft-memory awareness:

* SMA reclamation of keyspace entries appends **tombstones**, so data
  dropped under memory pressure stays dropped across restart;
* replayed entries are re-admitted through the store's normal
  soft-allocation path, so the SMD budget gates them: a denial (or
  PR 1's degraded mode while the daemon is unreachable) skips the
  entry — the store is a cache, a skipped entry is a future miss, and
  recovery never crashes on it;
* TTLs are persisted as absolute unix-epoch deadlines: replay converts
  them back to the store clock, and keys already past their deadline
  are dropped during replay, never resurrected, never extended.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import SoftMemoryDenied
from repro.kvstore.persist.aof import (
    FSYNC_POLICIES,
    AofWriter,
    FileFactory,
    RealFile,
    load_aof,
)
from repro.kvstore.persist.codec import (
    EXP_ABSOLUTE,
    EXP_KEEP,
    EXP_NONE,
    encode_delete,
    encode_demote,
    encode_expire,
    encode_flush,
    encode_persist,
    encode_tombstone,
    encode_write,
)
from repro.kvstore.persist.snapshot import (
    SnapshotEntry,
    materialize_entries,
    read_snapshot,
    write_snapshot,
)
from repro.kvstore.values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvstore.store import DataStore

_BASE_RE = re.compile(r"^base-(\d+)\.snap$")
_INCR_RE = re.compile(r"^incr-(\d+)\.aof$")


@dataclass
class PersistenceConfig:
    """Durability knobs (the CONFIG-visible surface)."""

    dir: str
    appendonly: bool = True
    appendfsync: str = "everysec"  # always | everysec | no
    fsync_interval: float = 1.0
    #: previous generations kept after a checkpoint (fallback targets
    #: for a corrupt newest snapshot)
    keep_generations: int = 1

    def __post_init__(self) -> None:
        if self.appendfsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown appendfsync {self.appendfsync!r}")
        if self.keep_generations < 0:
            raise ValueError("keep_generations must be non-negative")


@dataclass
class PersistStats:
    """Lifetime counters (INFO Persistence)."""

    aof_records: int = 0
    flushes: int = 0
    tombstones_logged: int = 0
    rdb_saves: int = 0
    #: unix seconds of the last *completed* snapshot (LASTSAVE)
    rdb_last_save_time: int = 0
    recovery_truncated_bytes: int = 0
    recovered_records: int = 0
    recovered_keys: int = 0
    #: replayed entries skipped because the SMA denied the allocation
    #: (budget exhausted machine-wide, or degraded mode)
    recovery_admission_denied: int = 0
    #: replayed entries dropped because their absolute deadline passed
    recovery_expired_dropped: int = 0
    #: snapshot files that failed validation during recovery
    snapshots_rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


class Persistence:
    """Crash-safe durability for one store; see the module docstring."""

    def __init__(
        self,
        config: PersistenceConfig,
        *,
        file_factory: FileFactory = RealFile,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config
        self.stats = PersistStats()
        self._file_factory = file_factory
        self._clock = clock
        self._store: "DataStore | None" = None
        self._writer: AofWriter | None = None
        self._generation = 0
        self._logging = False
        self._closed = False
        #: guards the writer (buffer + flush) — hooks append under the
        #: server's execution lock, but flush may come from another
        #: thread (threaded server workers, background checkpoints)
        self._io_lock = threading.Lock()
        #: guards checkpoint bookkeeping (one BGSAVE at a time)
        self._save_lock = threading.Lock()
        self._bgsave_thread: threading.Thread | None = None
        self.bgsave_in_progress = False
        self.last_bgsave_error: str | None = None
        os.makedirs(config.dir, exist_ok=True)

    # ------------------------------------------------------------------
    # paths and generation discovery
    # ------------------------------------------------------------------

    def _base_path(self, gen: int) -> str:
        return os.path.join(self.config.dir, f"base-{gen}.snap")

    def _incr_path(self, gen: int) -> str:
        return os.path.join(self.config.dir, f"incr-{gen}.aof")

    def _scan_generations(self) -> tuple[list[int], list[int]]:
        """Sorted generation numbers present: ``(bases, incrs)``."""
        bases: list[int] = []
        incrs: list[int] = []
        try:
            names = os.listdir(self.config.dir)
        except OSError:
            return [], []
        for name in names:
            if m := _BASE_RE.match(name):
                bases.append(int(m.group(1)))
            elif m := _INCR_RE.match(name):
                incrs.append(int(m.group(1)))
        return sorted(bases), sorted(incrs)

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def aof_enabled(self) -> bool:
        return self._logging

    @property
    def aof_size(self) -> int:
        """Bytes known intact in the current incremental log."""
        writer = self._writer
        return writer.good_size if writer is not None else 0

    @property
    def aof_pending_bytes(self) -> int:
        writer = self._writer
        return writer.pending_bytes if writer is not None else 0

    @property
    def aof_path(self) -> str:
        return self._incr_path(self._generation)

    @property
    def fsync_errors(self) -> int:
        writer = self._writer
        return self._fsync_errors_closed + (
            writer.fsync_errors if writer is not None else 0
        )

    @property
    def write_errors(self) -> int:
        writer = self._writer
        return self._write_errors_closed + (
            writer.write_errors if writer is not None else 0
        )

    _fsync_errors_closed = 0
    _write_errors_closed = 0
    #: True while a replication apply drives the store: its mutations
    #: must not re-enter the log hooks (the raw stream bytes land via
    #: :meth:`append_raw` instead — hook replay would double-log, e.g.
    #: ``_restore_write``'s internal delete emitting a spurious D)
    _suppress = False

    # ------------------------------------------------------------------
    # attach + recovery
    # ------------------------------------------------------------------

    def attach(self, store: "DataStore", *, recover: bool = True) -> None:
        """Bind to ``store``: recover from disk, then start logging."""
        if self._store is not None:
            raise RuntimeError("persistence is already attached to a store")
        self._store = store
        if recover:
            self._recover(store)
        else:
            bases, incrs = self._scan_generations()
            self._generation = max(bases + incrs, default=0)
        if self.config.appendonly:
            self._open_writer()
            self._logging = True

    def _open_writer(self) -> None:
        self._retire_writer()
        self._writer = AofWriter(
            self._incr_path(self._generation),
            fsync_policy=self.config.appendfsync,
            fsync_interval=self.config.fsync_interval,
            file_factory=self._file_factory,
        )

    def _retire_writer(self) -> None:
        writer = self._writer
        if writer is not None:
            self._fsync_errors_closed += writer.fsync_errors
            self._write_errors_closed += writer.write_errors
            writer.close()
            self._writer = None

    def _recover(self, store: "DataStore") -> None:
        """Load the newest valid snapshot, replay the contiguous tail."""
        self._sweep_tmp_files()
        bases, incrs = self._scan_generations()
        start_gen = 0
        loaded: list[SnapshotEntry] | None = None
        for gen in reversed(bases):
            result = read_snapshot(self._base_path(gen))
            if result is not None:
                loaded = result[0]
                start_gen = gen
                break
            # provably invalid (torn trailer, bad frame): keeping it
            # would only make every future recovery reject it again
            self.stats.snapshots_rejected += 1
            self._remove_quiet(self._base_path(gen))
        if loaded is None and incrs:
            start_gen = incrs[0]
        now_ms = int(self._clock() * 1000)
        if loaded:
            for key, value, deadline_ms in loaded:
                self._restore_entry(store, key, value, deadline_ms, now_ms)
        # replay the contiguous run of incremental logs from start_gen up
        gen = start_gen
        last_seen = start_gen
        while os.path.exists(self._incr_path(gen)):
            records, truncated = load_aof(self._incr_path(gen))
            self.stats.recovery_truncated_bytes += truncated
            for record in records:
                self._apply_record(store, record, now_ms)
            self.stats.recovered_records += len(records)
            last_seen = gen
            if truncated:
                # bytes after a corruption point are unsafe to replay —
                # a later generation may reference state the lost suffix
                # carried. Drop the orphans; their size counts as lost.
                orphan = gen + 1
                while os.path.exists(self._incr_path(orphan)):
                    try:
                        self.stats.recovery_truncated_bytes += (
                            os.path.getsize(self._incr_path(orphan))
                        )
                        os.remove(self._incr_path(orphan))
                    except OSError:
                        pass
                    orphan += 1
                break
            gen += 1
        all_gens = [last_seen] + [g for g in bases if g <= last_seen]
        self._generation = max(all_gens, default=0)
        # keys whose final replayed deadline already passed die here —
        # after the full replay, so in-log rescues (PERSIST, rewrites)
        # were given their chance first
        self.stats.recovery_expired_dropped += store.sweep_expired()

    def _restore_entry(
        self,
        store: "DataStore",
        key: bytes,
        value: Value,
        deadline_unix_ms: "int | None",
        now_ms: int,
    ) -> None:
        """Re-admit one entry, gated by the soft memory budget.

        An already-past deadline is still restored (with a non-positive
        relative TTL) rather than dropped on the spot: a later record in
        the log — PERSIST, or a KEEPTTL-less rewrite — may legitimately
        rescue the key, exactly as it would have live. Keys whose
        *final* deadline is past are swept once replay completes.
        """
        ex: float | None = None
        if deadline_unix_ms is not None:
            ex = (deadline_unix_ms - now_ms) / 1000.0
        try:
            store._restore_write(key, value, ex)
        except SoftMemoryDenied:
            # budget exhausted (or degraded mode): the entry stays a
            # future cache miss; replay continues
            self.stats.recovery_admission_denied += 1
            return
        self.stats.recovered_keys += 1

    def _apply_record(
        self, store: "DataStore", record: tuple, now_ms: int
    ) -> None:
        kind = record[0]
        if kind == "W":
            __, key, value, exp_kind, deadline = record
            if exp_kind == EXP_KEEP:
                deadline_ms = store._restore_deadline_ms(key, now_ms)
            elif exp_kind == EXP_ABSOLUTE:
                deadline_ms = deadline
            else:
                deadline_ms = None
            self._restore_entry(store, key, value, deadline_ms, now_ms)
        elif kind in ("D", "T"):
            store._restore_delete(record[1])
        elif kind == "E":
            __, key, deadline = record
            # a non-positive TTL is applied too; the post-replay sweep
            # collects it unless a later record rescinds the deadline
            store._restore_expire(key, (deadline - now_ms) / 1000.0)
        elif kind == "P":
            store._restore_persist(record[1])
        elif kind == "M":
            store._restore_demote(record[1])
        elif kind == "F":
            store._restore_flush()
        # "Z" can only appear in snapshot files, which never reach here

    # ------------------------------------------------------------------
    # logging hooks (called by the store under its serialization)
    # ------------------------------------------------------------------

    def _deadline_ms(self, ex_relative: float) -> int:
        return int((self._clock() + ex_relative) * 1000)

    def log_write(
        self,
        key: bytes,
        value: Value,
        ex_relative: "float | None",
        keep_ttl: bool,
    ) -> None:
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            if ex_relative is not None:
                encode_write(
                    writer.buffer, key, value,
                    EXP_ABSOLUTE, self._deadline_ms(ex_relative),
                )
            elif keep_ttl:
                encode_write(writer.buffer, key, value, EXP_KEEP)
            else:
                encode_write(writer.buffer, key, value, EXP_NONE)
            writer.records_appended += 1
            self.stats.aof_records += 1

    def log_delete(self, key: bytes) -> None:
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_delete(writer.buffer, key)
            writer.note_records(1)
            self.stats.aof_records += 1

    def log_demote(self, key: bytes) -> None:
        """Entry demoted into the compressed second-chance tier.

        Replay re-runs the demotion (when the tier is enabled) so a
        recovered store carries the same compressed footprint; the
        entry's bytes were already logged by its ``W`` record.
        Promotions are deliberately not logged — a recovered-compressed
        entry inflates on first read exactly like a live one.
        """
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_demote(writer.buffer, key)
            writer.note_records(1)
            self.stats.aof_records += 1

    def log_tombstone(self, key: bytes) -> None:
        """Reclaimed soft entry: dropped data must stay dropped."""
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_tombstone(writer.buffer, key)
            writer.note_records(1)
            self.stats.aof_records += 1
            self.stats.tombstones_logged += 1

    def log_expire(self, key: bytes, ex_relative: float) -> None:
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_expire(writer.buffer, key, self._deadline_ms(ex_relative))
            writer.note_records(1)
            self.stats.aof_records += 1

    def log_persist(self, key: bytes) -> None:
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_persist(writer.buffer, key)
            writer.note_records(1)
            self.stats.aof_records += 1

    def log_flush(self) -> None:
        if not self._logging or self._suppress:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            encode_flush(writer.buffer)
            writer.note_records(1)
            self.stats.aof_records += 1

    @contextmanager
    def hooks_suppressed(self):
        """Silence the ``log_*`` hooks for a replication apply.

        The caller holds the store's serialization for the whole
        block, so the flag needs no lock of its own.
        """
        self._suppress = True
        try:
            yield
        finally:
            self._suppress = False

    def append_raw(self, data: bytes, records: int) -> None:
        """Append already-framed stream bytes to the AOF verbatim.

        The replica's local log must replay to the same state the
        stream produced; the master already framed and CRC'd these
        bytes, so they go in untouched.
        """
        if not self._logging or not data:
            return
        writer = self._writer
        if writer is None:
            return
        with self._io_lock:
            writer.buffer += data
            writer.note_records(records)
            self.stats.aof_records += records

    # ------------------------------------------------------------------
    # flushing (called by the serving loop, once per batch)
    # ------------------------------------------------------------------

    def flush(self, *, force_fsync: bool = False) -> bool:
        """Push the write-behind buffer to disk per the fsync policy."""
        writer = self._writer
        if writer is None:
            return True
        with self._io_lock:
            if writer.pending_bytes:
                self.stats.flushes += 1
            # even with nothing pending the writer may owe a deferred
            # everysec fsync for bytes already written
            return writer.flush(force_fsync=force_fsync)

    # ------------------------------------------------------------------
    # checkpoints (SAVE / BGSAVE / BGREWRITEAOF)
    # ------------------------------------------------------------------

    def checkpoint(self, *, background: bool = False) -> bool:
        """Capture a snapshot and (when AOF is on) rotate the log.

        Must be called under the store's serialization (command
        handlers already are). The materialization and the log switch
        happen synchronously — the switch point is exact — and only
        the snapshot serialization moves to a thread for ``BGSAVE``.
        Returns False when a background save is already running.
        """
        store = self._store
        if store is None:
            raise RuntimeError("persistence is not attached to a store")
        with self._save_lock:
            if self.bgsave_in_progress:
                return False
            gen = self._generation + 1
            entries = self._materialize(store)
            if self._logging:
                with self._io_lock:
                    writer = self._writer
                    if writer is not None:
                        writer.flush(force_fsync=True)
                self._generation = gen
                with self._io_lock:
                    self._open_writer()
            else:
                self._generation = gen
            if background:
                self.bgsave_in_progress = True
                self._bgsave_thread = threading.Thread(
                    target=self._write_base,
                    args=(gen, entries),
                    name="kv-bgsave",
                    daemon=True,
                )
                self._bgsave_thread.start()
                return True
        self._write_base(gen, entries)
        return True

    def join_bgsave(self, timeout: float | None = None) -> None:
        """Wait for an in-flight BGSAVE thread (tests, orderly drains)."""
        thread = self._bgsave_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def _materialize(self, store: "DataStore") -> list[SnapshotEntry]:
        """A consistent cut of the keyspace (under store serialization)."""
        return materialize_entries(store, self._clock())

    def _write_base(self, gen: int, entries: list[SnapshotEntry]) -> None:
        try:
            write_snapshot(
                self._base_path(gen), entries, int(self._clock() * 1000)
            )
            self.stats.rdb_saves += 1
            self.stats.rdb_last_save_time = int(self._clock())
            self.last_bgsave_error = None
            self._cleanup(gen)
        except OSError as exc:
            self.last_bgsave_error = f"{type(exc).__name__}: {exc}"
        finally:
            self.bgsave_in_progress = False

    def _cleanup(self, current_gen: int) -> None:
        """Drop generations older than the configured fallback window."""
        keep_from = current_gen - self.config.keep_generations
        bases, incrs = self._scan_generations()
        for gen in bases:
            if gen < keep_from:
                self._remove_quiet(self._base_path(gen))
        for gen in incrs:
            if gen < keep_from:
                self._remove_quiet(self._incr_path(gen))

    def _sweep_tmp_files(self) -> None:
        """Drop ``*.tmp`` left by a crash mid-snapshot (pre-rename)."""
        try:
            names = os.listdir(self.config.dir)
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp"):
                self._remove_quiet(os.path.join(self.config.dir, name))

    @staticmethod
    def _remove_quiet(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # config surface (CONFIG SET appendonly / appendfsync)
    # ------------------------------------------------------------------

    def set_appendonly(self, enabled: bool) -> None:
        """Toggle the AOF. Enabling checkpoints first (like Redis's
        rewrite-on-enable) so the fresh log has a complete base."""
        if enabled == self.config.appendonly and (
            enabled == self._logging
        ):
            return
        self.config.appendonly = enabled
        if enabled:
            if self._writer is None:
                self._open_writer()
            self._logging = True
            self.checkpoint(background=False)
        else:
            self._logging = False
            with self._io_lock:
                self._retire_writer()

    def set_appendfsync(self, policy: str) -> None:
        if policy not in FSYNC_POLICIES:
            raise ValueError(f"unknown appendfsync {policy!r}")
        self.config.appendfsync = policy
        writer = self._writer
        if writer is not None:
            writer.fsync_policy = policy

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self, *, final_snapshot: bool = False) -> None:
        """Flush and seal. Idempotent: a second close (or a signal
        racing the first) is a no-op — never a double flush."""
        with self._save_lock:
            if self._closed:
                return
            self._closed = True
        thread = self._bgsave_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=10)
        if final_snapshot and self._store is not None:
            try:
                entries = self._materialize(self._store)
                gen = self._generation + 1
                if self._logging:
                    with self._io_lock:
                        writer = self._writer
                        if writer is not None:
                            writer.flush(force_fsync=True)
                    self._generation = gen
                    with self._io_lock:
                        self._open_writer()
                else:
                    self._generation = gen
                self._write_base(gen, entries)
            except OSError:
                pass
        self._logging = False
        with self._io_lock:
            self._retire_writer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"<Persistence dir={self.config.dir!r} gen={self._generation} "
            f"aof={'on' if self._logging else 'off'}/"
            f"{self.config.appendfsync}>"
        )
