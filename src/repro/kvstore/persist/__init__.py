"""Crash-safe durability plane for the kvstore.

The package persists the keyspace the way the paper's serving substrate
(Redis) does, adapted to soft memory:

* :mod:`~repro.kvstore.persist.codec` — the CRC32-framed,
  length-prefixed record codec shared by the append-only log and the
  snapshot files (a snapshot *is* a rewritten log plus a sealed
  trailer, so one scanner validates both).
* :mod:`~repro.kvstore.persist.aof` — the append-only log writer with
  a write-behind buffer and the ``always``/``everysec``/``no`` fsync
  policies, plus the tail scanner that tolerates torn or corrupt tails
  by clean truncation at the last valid record.
* :mod:`~repro.kvstore.persist.snapshot` — point-in-time snapshots
  written atomically (tmp + fsync + rename + directory fsync).
* :mod:`~repro.kvstore.persist.engine` — the :class:`Persistence`
  orchestrator: generation-numbered checkpoints, startup recovery
  (newest valid snapshot, then the contiguous AOF tail), soft-memory
  awareness (reclamation tombstones; budget-gated re-admission on
  replay), and the stats surfaced through ``INFO Persistence``.
* :mod:`~repro.kvstore.persist.faults` — storage fault injection
  (short writes, torn records, bit flips, fsync errors, ENOSPC),
  modeled on :mod:`repro.rpc.faults`.
"""

from repro.kvstore.persist.aof import AofWriter, load_aof
from repro.kvstore.persist.codec import (
    CorruptRecord,
    decode_record,
    encode_delete,
    encode_expire,
    encode_flush,
    encode_persist,
    encode_tombstone,
    encode_write,
    scan_frames,
)
from repro.kvstore.persist.engine import (
    Persistence,
    PersistenceConfig,
    PersistStats,
)
from repro.kvstore.persist.faults import (
    DiskFaultInjector,
    DiskFaultPlan,
    DiskFaultStats,
    FaultyFile,
)
from repro.kvstore.persist.snapshot import read_snapshot, write_snapshot

__all__ = [
    "AofWriter",
    "CorruptRecord",
    "DiskFaultInjector",
    "DiskFaultPlan",
    "DiskFaultStats",
    "FaultyFile",
    "Persistence",
    "PersistenceConfig",
    "PersistStats",
    "decode_record",
    "encode_delete",
    "encode_expire",
    "encode_flush",
    "encode_persist",
    "encode_tombstone",
    "encode_write",
    "load_aof",
    "read_snapshot",
    "scan_frames",
    "write_snapshot",
]
