"""The durability record codec: CRC32-framed, length-prefixed records.

Every byte that reaches disk — append-only log records and snapshot
entries alike — travels inside one frame shape::

    u32 payload-length | u32 crc32(payload) | payload

(little-endian, CRC over the payload only). A reader can therefore
walk a file frame by frame and *prove* where the valid prefix ends: a
short header, an insane length, a missing payload tail, or a CRC
mismatch all mean "the log ends here", never an exception. That is the
contract crash recovery is built on — a torn write or a flipped bit
costs the suffix, not the keyspace.

Record payloads start with a one-byte kind tag:

* ``W`` — write: key, typed value, and an expiry clause (none / keep
  the existing TTL / absolute unix-epoch milliseconds). All TTLs are
  persisted as **absolute** deadlines so a restart can never extend a
  key's lifetime.
* ``D`` — delete (client DEL, expiry, or empty-container removal).
* ``T`` — tombstone: the entry was reclaimed by the soft memory
  allocator. Distinct from ``D`` so recovery accounting (and the
  invariant "reclaimed soft data stays dropped") can tell them apart;
  replay semantics are the same deletion. Second-chance drops from the
  compressed tier log the same ``T``.
* ``M`` — demote: the entry was pushed into the compressed
  second-chance tier. Replay re-compresses in place so recovery
  re-admission is budget-gated at the *compressed* size. Promotion is
  deliberately not logged — a recovered-compressed entry inflates on
  first read, byte-identical to the promoted live value.
* ``E`` — set expiry to an absolute unix-epoch-milliseconds deadline.
* ``P`` — persist (clear the TTL).
* ``F`` — flush the whole keyspace.
* ``Z`` — snapshot trailer (entry count + save timestamp); seals a
  snapshot file and never appears in an append-only log.

Typed values reuse the store's three Redis types: ``S`` bytes, ``H``
hash (``dict[bytes, bytes]``), ``L`` list (``deque[bytes]``) — plus
``C``, the compressed second-chance envelope (original size, original
kind tag, zlib bytes), so snapshots carry demoted entries natively.
"""

from __future__ import annotations

from collections import deque
from zlib import crc32

from repro.kvstore.values import CompressedValue, Value
from repro.kvstore.wire import FRAME_HEADER, U32, U64

__all__ = [
    "CorruptRecord",
    "EXP_ABSOLUTE",
    "EXP_KEEP",
    "EXP_NONE",
    "decode_record",
    "encode_delete",
    "encode_demote",
    "encode_expire",
    "encode_flush",
    "encode_persist",
    "encode_tombstone",
    "encode_trailer",
    "encode_write",
    "frame",
    "scan_frames",
]

# precompiled once in ``repro.kvstore.wire`` and shared with the RESP
# serving plane: payload length + crc32(payload), little-endian fields
_HEADER = FRAME_HEADER
_U32 = U32
_U64 = U64
HEADER_SIZE = _HEADER.size

#: refuse to believe a single record is larger than this — a corrupt
#: length field must not make the scanner try to "wait" for gigabytes
MAX_RECORD_SIZE = 64 * 1024 * 1024

#: expiry clause markers inside W records
EXP_NONE = 0  # no TTL (clears any existing one on replay)
EXP_KEEP = 1  # keep whatever TTL the replayed state has (SET KEEPTTL)
EXP_ABSOLUTE = 2  # absolute unix-epoch milliseconds follow (u64)


class CorruptRecord(ValueError):
    """A frame or record payload failed validation.

    Raised by the *decoders* when handed a payload that passed its CRC
    but does not parse (which means a logic bug or hand-crafted bytes,
    not disk corruption — CRC-failing frames never reach the decoder).
    The file scanner converts any decode failure into clean truncation.
    """


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length+CRC frame."""
    return _HEADER.pack(len(payload), crc32(payload)) + payload


def _frame_into(out: bytearray, parts: tuple[bytes, ...]) -> None:
    """Append one framed record built from ``parts`` to ``out``.

    One C-level join + one CRC pass beats per-part incremental CRC by
    a wide margin on the serving hot path (typical records are a
    handful of small parts, so the temporary is tiny and short-lived).
    """
    payload = b"".join(parts)
    out += _HEADER.pack(len(payload), crc32(payload))
    out += payload



def scan_frames(data: bytes) -> tuple[list[bytes], int]:
    """Walk ``data`` frame by frame; return ``(payloads, valid_size)``.

    ``valid_size`` is the byte offset just past the last frame that
    passed length and CRC validation — everything beyond it is a torn
    or corrupt tail the caller should truncate. Never raises.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    unpack = _HEADER.unpack_from
    while total - offset >= HEADER_SIZE:
        length, crc = unpack(data, offset)
        if length > MAX_RECORD_SIZE:
            break
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            break  # torn tail: the payload never fully landed
        payload = data[start:end]
        if crc32(payload) != crc:
            break  # bit flip (or a torn header overlapping old bytes)
        payloads.append(payload)
        offset = end
    return payloads, offset


# ----------------------------------------------------------------------
# typed values
# ----------------------------------------------------------------------


def _value_parts(value: Value) -> tuple[bytes, ...]:
    """Flatten a typed value into codec parts (no concatenation)."""
    if type(value) is bytes:
        return (b"S", _U32.pack(len(value)), value)
    if isinstance(value, dict):
        parts: list[bytes] = [b"H", _U32.pack(len(value))]
        for fld, item in value.items():
            parts.append(_U32.pack(len(fld)))
            parts.append(fld)
            parts.append(_U32.pack(len(item)))
            parts.append(item)
        return tuple(parts)
    if isinstance(value, deque):
        parts = [b"L", _U32.pack(len(value))]
        for item in value:
            parts.append(_U32.pack(len(item)))
            parts.append(item)
        return tuple(parts)
    if type(value) is CompressedValue:
        return (
            b"C",
            _U32.pack(value.original_bytes),
            value.kind,
            _U32.pack(len(value.data)),
            value.data,
        )
    if isinstance(value, bytes):  # bytes subclass: normalize
        raw = bytes(value)
        return (b"S", _U32.pack(len(raw)), raw)
    raise CorruptRecord(f"unsupported value type {type(value).__name__}")


def _read_u32(payload: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(payload):
        raise CorruptRecord("truncated u32")
    return _U32.unpack_from(payload, offset)[0], offset + 4


def _read_chunk(payload: bytes, offset: int) -> tuple[bytes, int]:
    size, offset = _read_u32(payload, offset)
    end = offset + size
    if end > len(payload):
        raise CorruptRecord("truncated chunk")
    return payload[offset:end], end


def _decode_value(payload: bytes, offset: int) -> tuple[Value, int]:
    if offset >= len(payload):
        raise CorruptRecord("missing value tag")
    tag = payload[offset:offset + 1]
    offset += 1
    if tag == b"S":
        return _read_chunk(payload, offset)
    if tag == b"H":
        count, offset = _read_u32(payload, offset)
        table: dict[bytes, bytes] = {}
        for _ in range(count):
            fld, offset = _read_chunk(payload, offset)
            item, offset = _read_chunk(payload, offset)
            table[fld] = item
        return table, offset
    if tag == b"L":
        count, offset = _read_u32(payload, offset)
        items: deque[bytes] = deque()
        for _ in range(count):
            item, offset = _read_chunk(payload, offset)
            items.append(item)
        return items, offset
    if tag == b"C":
        original, offset = _read_u32(payload, offset)
        if offset + 1 > len(payload):
            raise CorruptRecord("truncated compressed kind")
        kind = payload[offset:offset + 1]
        if kind not in (b"S", b"H", b"L"):
            raise CorruptRecord(f"unknown compressed kind {kind!r}")
        data, offset = _read_chunk(payload, offset + 1)
        return CompressedValue(data, original, kind), offset
    raise CorruptRecord(f"unknown value tag {tag!r}")


# ----------------------------------------------------------------------
# record encoders (append framed bytes straight into the caller buffer)
# ----------------------------------------------------------------------


def encode_write(
    out: bytearray,
    key: bytes,
    value: Value,
    exp_kind: int,
    deadline_unix_ms: int = 0,
) -> None:
    """Append a framed W record.

    ``exp_kind`` is one of :data:`EXP_NONE` / :data:`EXP_KEEP` /
    :data:`EXP_ABSOLUTE`; the deadline is unix-epoch milliseconds and
    only read for :data:`EXP_ABSOLUTE`.
    """
    if type(value) is bytes and exp_kind == EXP_NONE:
        # serving-plane fast path: a plain SET (bytes value, no expiry
        # clause) is the overwhelming majority of logged records, and
        # at wire rate the generic parts assembly below is a measurable
        # slice of the event loop. Byte-identical to the general path.
        payload = b"".join((
            b"W", _U32.pack(len(key)), key,
            b"S", _U32.pack(len(value)), value, b"\x00",
        ))
        out += _HEADER.pack(len(payload), crc32(payload))
        out += payload
        return
    parts = (b"W", _U32.pack(len(key)), key) + _value_parts(value)
    if exp_kind == EXP_ABSOLUTE:
        parts += (b"\x02", _U64.pack(deadline_unix_ms))
    elif exp_kind == EXP_KEEP:
        parts += (b"\x01",)
    elif exp_kind == EXP_NONE:
        parts += (b"\x00",)
    else:
        raise ValueError(f"unknown expiry kind {exp_kind}")
    _frame_into(out, parts)


def _encode_keyed(out: bytearray, tag: bytes, key: bytes) -> None:
    _frame_into(out, (tag, _U32.pack(len(key)), key))


def encode_delete(out: bytearray, key: bytes) -> None:
    """Append a framed D record."""
    _encode_keyed(out, b"D", key)


def encode_tombstone(out: bytearray, key: bytes) -> None:
    """Append a framed T record (soft-memory reclamation)."""
    _encode_keyed(out, b"T", key)


def encode_demote(out: bytearray, key: bytes) -> None:
    """Append a framed M record (second-chance tier demotion)."""
    _encode_keyed(out, b"M", key)


def encode_persist(out: bytearray, key: bytes) -> None:
    """Append a framed P record (TTL cleared)."""
    _encode_keyed(out, b"P", key)


def encode_expire(out: bytearray, key: bytes, deadline_unix_ms: int) -> None:
    """Append a framed E record (absolute deadline, unix ms)."""
    _frame_into(
        out,
        (b"E", _U32.pack(len(key)), key, _U64.pack(deadline_unix_ms)),
    )


def encode_flush(out: bytearray) -> None:
    """Append a framed F record (FLUSHALL)."""
    _frame_into(out, (b"F",))


def encode_trailer(out: bytearray, count: int, saved_unix_ms: int) -> None:
    """Append the framed Z trailer that seals a snapshot file."""
    _frame_into(out, (b"Z", _U64.pack(count), _U64.pack(saved_unix_ms)))


# ----------------------------------------------------------------------
# record decoder
# ----------------------------------------------------------------------


def decode_record(payload: bytes) -> tuple:
    """Decode one CRC-validated payload into a record tuple.

    Shapes (first element is the kind string):

    * ``("W", key, value, exp_kind, deadline_unix_ms)``
    * ``("D", key)`` / ``("T", key)`` / ``("P", key)`` / ``("M", key)``
    * ``("E", key, deadline_unix_ms)``
    * ``("F",)``
    * ``("Z", count, saved_unix_ms)``

    Raises :class:`CorruptRecord` on any malformed payload.
    """
    if not payload:
        raise CorruptRecord("empty record")
    kind = payload[0:1]
    if kind == b"W":
        key, offset = _read_chunk(payload, 1)
        value, offset = _decode_value(payload, offset)
        if offset >= len(payload):
            raise CorruptRecord("missing expiry clause")
        exp_kind = payload[offset]
        offset += 1
        deadline = 0
        if exp_kind == EXP_ABSOLUTE:
            if offset + 8 > len(payload):
                raise CorruptRecord("truncated deadline")
            deadline = _U64.unpack_from(payload, offset)[0]
            offset += 8
        elif exp_kind not in (EXP_NONE, EXP_KEEP):
            raise CorruptRecord(f"unknown expiry kind {exp_kind}")
        if offset != len(payload):
            raise CorruptRecord("trailing bytes in W record")
        return ("W", key, value, exp_kind, deadline)
    if kind in (b"D", b"T", b"P", b"M"):
        key, offset = _read_chunk(payload, 1)
        if offset != len(payload):
            raise CorruptRecord("trailing bytes in keyed record")
        return (kind.decode(), key)
    if kind == b"E":
        key, offset = _read_chunk(payload, 1)
        if offset + 8 != len(payload):
            raise CorruptRecord("bad E record size")
        return ("E", key, _U64.unpack_from(payload, offset)[0])
    if kind == b"F":
        if len(payload) != 1:
            raise CorruptRecord("trailing bytes in F record")
        return ("F",)
    if kind == b"Z":
        if len(payload) != 17:
            raise CorruptRecord("bad trailer size")
        return (
            "Z",
            _U64.unpack_from(payload, 1)[0],
            _U64.unpack_from(payload, 9)[0],
        )
    raise CorruptRecord(f"unknown record kind {kind!r}")
