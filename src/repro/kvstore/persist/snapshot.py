"""Point-in-time snapshots: a rewritten log sealed with a trailer.

A snapshot file is::

    MAGIC | framed W record per live key | framed Z trailer

The W records carry absolute unix-millisecond deadlines (or no expiry),
so loading a snapshot is exactly replaying it — one replay path serves
both files. The Z trailer proves completeness: it repeats the entry
count, so a snapshot whose write was interrupted (missing or torn
trailer, count mismatch, any bad frame) is *invalid as a whole* and
recovery falls back to an older generation. Contrast with the
append-only log, where a torn tail costs only the suffix — a snapshot
is not a log of independent events but one atomic state capture.

Writes are crash-atomic: serialize to ``<path>.tmp``, fsync, rename
over the final name, fsync the directory. A reader can never observe a
half-written file under the final name.
"""

from __future__ import annotations

import os

from repro.kvstore.persist.codec import (
    EXP_ABSOLUTE,
    EXP_NONE,
    CorruptRecord,
    decode_record,
    encode_trailer,
    encode_write,
    scan_frames,
)
from repro.kvstore.values import CompressedValue, Value

MAGIC = b"RPROSNAP1\n"

#: one snapshot entry: key, typed value, absolute unix-ms deadline or None
SnapshotEntry = tuple[bytes, Value, "int | None"]


def snapshot_body(entries: list[SnapshotEntry], saved_unix_ms: int) -> bytes:
    """Serialize ``entries`` to the framed body (W records + Z trailer).

    This is the byte payload a full replication sync ships inline — the
    same bytes a ``base-<g>.snap`` holds after the file magic.
    """
    out = bytearray()
    for key, value, deadline_ms in entries:
        if deadline_ms is None:
            encode_write(out, key, value, EXP_NONE)
        else:
            encode_write(out, key, value, EXP_ABSOLUTE, deadline_ms)
    encode_trailer(out, len(entries), saved_unix_ms)
    return bytes(out)


def write_snapshot(
    path: str, entries: list[SnapshotEntry], saved_unix_ms: int
) -> int:
    """Serialize ``entries`` atomically to ``path``; return bytes written."""
    out = MAGIC + snapshot_body(entries, saved_unix_ms)
    tmp = path + ".tmp"
    fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
    try:
        os.write(fd, bytes(out))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")
    return len(out)


def read_snapshot(path: str) -> tuple[list[SnapshotEntry], int] | None:
    """Load and validate a snapshot; ``None`` means *invalid or missing*.

    Valid requires: magic intact, every frame scanning cleanly to the
    end of the file, the final record being a Z trailer whose count
    matches the number of entries. Never raises on garbage.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    if not data.startswith(MAGIC):
        return None
    return load_snapshot_bytes(data[len(MAGIC):])


def load_snapshot_bytes(
    body: bytes,
) -> tuple[list[SnapshotEntry], int] | None:
    """Validate a magic-less snapshot body (a full-sync payload).

    Same contract as :func:`read_snapshot` minus the file concerns:
    every frame must scan cleanly to the end, sealed by a Z trailer
    whose count matches. ``None`` means invalid; never raises.
    """
    payloads, valid_size = scan_frames(body)
    if valid_size != len(body) or not payloads:
        return None  # torn tail or trailing garbage: not a sealed capture
    entries: list[SnapshotEntry] = []
    trailer: tuple | None = None
    for index, payload in enumerate(payloads):
        try:
            record = decode_record(payload)
        except CorruptRecord:
            return None
        if record[0] == "Z":
            if index != len(payloads) - 1:
                return None  # trailer must seal the file
            trailer = record
        elif record[0] == "W":
            __, key, value, exp_kind, deadline = record
            entries.append(
                (key, value, deadline if exp_kind == EXP_ABSOLUTE else None)
            )
        else:
            return None  # snapshots hold only W records + the trailer
    if trailer is None or trailer[1] != len(entries):
        return None
    return entries, trailer[2]


def materialize_entries(store, now_unix: float) -> list[SnapshotEntry]:
    """Copy the live keyspace (containers included) for serialization.

    Must run under the store's serialization: the copies are a
    consistent cut, and whoever serializes them afterwards (a BGSAVE
    thread, a replication full sync) never touches live mutable
    values. Store deadlines are on the store clock; they come out as
    absolute unix-ms anchored at ``now_unix``.
    """
    now_store = store._now()
    entries: list[SnapshotEntry] = []
    for key, value in store.keyspace.items():
        deadline = store._expires.get(key)
        if deadline is not None and deadline <= now_store:
            continue  # already expired; the sweep just hasn't run
        deadline_ms: int | None = None
        if deadline is not None:
            deadline_ms = int((now_unix + (deadline - now_store)) * 1000)
        if isinstance(value, dict):
            value = dict(value)
        elif not isinstance(value, (bytes, CompressedValue)):
            value = type(value)(value)
        entries.append((key, value, deadline_ms))
    return entries


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
