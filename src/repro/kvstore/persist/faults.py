"""Storage fault injection: the disk-side sibling of ``rpc/faults.py``.

Wraps the :class:`~repro.kvstore.persist.aof.BinaryFile` the AOF writer
talks to with a configurable chaos layer:

* **short writes** — only a prefix of the buffer reaches the file,
  then the write raises (how a torn record is born);
* **bit flips** — one byte of the written data is corrupted *silently*
  (the write succeeds; only recovery's CRC scan can notice);
* **fsync errors** — ``fsync`` raises ``EIO`` (the writer must count
  and carry on, not crash the serving plane);
* **ENOSPC** — writes past a byte budget fail with ``ENOSPC`` after
  persisting a prefix.

Like the RPC injector, the *injector* owns the RNG and counters so one
plan stays in force across file rotations (each new generation's log is
wrapped again and keeps rolling the same dice).

Usage::

    injector = DiskFaultInjector(DiskFaultPlan(bit_flip=0.05, seed=7))
    persistence = Persistence(config, file_factory=injector.open)
    ...
    print(injector.stats)
"""

from __future__ import annotations

import errno
import random
import threading
from dataclasses import dataclass

from repro.kvstore.persist.aof import BinaryFile, RealFile


@dataclass(frozen=True)
class DiskFaultPlan:
    """Per-operation fault probabilities (independent rolls)."""

    short_write: float = 0.0
    bit_flip: float = 0.0
    fsync_error: float = 0.0
    #: total bytes the "disk" accepts before writes fail with ENOSPC
    #: (``None`` = unlimited)
    enospc_after_bytes: int | None = None
    #: first N writes (per injector, across all wrapped files) pass
    #: clean, so a harness can lay down a healthy prefix first
    after_writes: int = 0
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("short_write", "bit_flip", "fsync_error"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability: {p}")
        if self.enospc_after_bytes is not None and self.enospc_after_bytes < 0:
            raise ValueError("enospc_after_bytes must be non-negative")
        if self.after_writes < 0:
            raise ValueError("after_writes must be non-negative")


class DiskFaultStats:
    """Counters shared by every file an injector has wrapped."""

    __slots__ = (
        "writes",
        "bytes_written",
        "short_writes",
        "bits_flipped",
        "fsync_errors",
        "enospc_errors",
    )

    def __init__(self) -> None:
        self.writes = 0
        self.bytes_written = 0
        self.short_writes = 0
        self.bits_flipped = 0
        self.fsync_errors = 0
        self.enospc_errors = 0

    @property
    def faults_injected(self) -> int:
        return (
            self.short_writes
            + self.bits_flipped
            + self.fsync_errors
            + self.enospc_errors
        )

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<DiskFaultStats {body}>"


class DiskFaultInjector:
    """Factory that wraps files under one plan/RNG/stat set."""

    def __init__(self, plan: DiskFaultPlan) -> None:
        self.plan = plan
        self.stats = DiskFaultStats()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._writes_seen = 0

    def open(self, path: str) -> "FaultyFile":
        """``file_factory`` drop-in for :class:`AofWriter`."""
        return FaultyFile(RealFile(path), self)

    def wrap(self, file: BinaryFile) -> "FaultyFile":
        return FaultyFile(file, self)

    # -- dice ----------------------------------------------------------

    def _roll_write(self, size: int) -> dict[str, int | bool]:
        plan = self.plan
        with self._lock:
            self._writes_seen += 1
            if self._writes_seen <= plan.after_writes:
                return {}
            fate: dict[str, int | bool] = {}
            if (
                plan.enospc_after_bytes is not None
                and self.stats.bytes_written + size > plan.enospc_after_bytes
            ):
                fate["enospc_room"] = max(
                    0, plan.enospc_after_bytes - self.stats.bytes_written
                )
                fate["enospc"] = True
            if self._rng.random() < plan.short_write:
                fate["short"] = self._rng.randrange(size) if size else 0
            if self._rng.random() < plan.bit_flip:
                fate["flip_at"] = self._rng.randrange(size) if size else 0
                fate["flip_bit"] = 1 << self._rng.randrange(8)
                fate["flip"] = size > 0
            return fate

    def _roll_fsync(self) -> bool:
        with self._lock:
            if self._writes_seen <= self.plan.after_writes:
                return False
            return self._rng.random() < self.plan.fsync_error


class FaultyFile:
    """A BinaryFile look-alike that misbehaves on purpose.

    A short write or ENOSPC persists a *prefix* before raising — the
    torn-record shape a real crash mid-``write`` leaves behind. A bit
    flip corrupts the written bytes silently; the caller sees success.
    """

    def __init__(self, inner: BinaryFile, injector: DiskFaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def write(self, data: bytes) -> int:
        stats = self._injector.stats
        fate = self._injector._roll_write(len(data))
        stats.writes += 1
        if fate.get("enospc"):
            room = int(fate.get("enospc_room", 0))
            torn = data[:room]
            if torn:
                self._write_all(torn)
                stats.bytes_written += len(torn)
            stats.enospc_errors += 1
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if "short" in fate:
            torn = data[: int(fate["short"])]
            if torn:
                self._write_all(torn)
                stats.bytes_written += len(torn)
            stats.short_writes += 1
            raise OSError(errno.EIO, "injected: short write")
        if fate.get("flip"):
            corrupt = bytearray(data)
            corrupt[int(fate["flip_at"])] ^= int(fate["flip_bit"])
            stats.bits_flipped += 1
            data = bytes(corrupt)
        self._write_all(data)
        stats.bytes_written += len(data)
        return len(data)

    def _write_all(self, data: bytes) -> None:
        written = 0
        while written < len(data):
            written += self._inner.write(data[written:])

    def fsync(self) -> None:
        if self._injector._roll_fsync():
            self._injector.stats.fsync_errors += 1
            raise OSError(errno.EIO, "injected: fsync failed")
        self._inner.fsync()

    def truncate(self, size: int) -> None:
        self._inner.truncate(size)

    def close(self) -> None:
        self._inner.close()
