"""Redis-like key-value store: the paper's evaluation substrate.

The paper adds soft memory to Redis by storing the elements of its hash
table buckets in soft memory (25 lines changed). Real Redis is 258K
lines of C we cannot link against, so this package provides a faithful
single-threaded stand-in:

* :mod:`~repro.kvstore.resp` — RESP2 wire protocol codec,
* :mod:`~repro.kvstore.dict` — the two-table, incrementally-rehashed
  dict Redis uses, with bucket entries living in soft memory,
* :mod:`~repro.kvstore.store` — keyspace, TTLs, memory accounting, and
  the reclamation callback that cleans up associated traditional memory
  (the code path the paper measures as dominating reclamation time),
* :mod:`~repro.kvstore.server` / :mod:`~repro.kvstore.client` — bytes-in
  bytes-out command dispatch and a convenience client.
"""

from repro.kvstore.client import KvClient
from repro.kvstore.dict import SoftDict
from repro.kvstore.resp import RespError, RespParser, encode_command, encode_reply
from repro.kvstore.server import KvServer
from repro.kvstore.store import DataStore, StoreConfig
from repro.kvstore.tcp import (
    EventLoopKvServer,
    TcpKvClient,
    TcpKvServer,
    ThreadedKvServer,
)
from repro.kvstore.values import WrongTypeError

__all__ = [
    "DataStore",
    "EventLoopKvServer",
    "KvClient",
    "KvServer",
    "ThreadedKvServer",
    "RespError",
    "RespParser",
    "SoftDict",
    "StoreConfig",
    "TcpKvClient",
    "TcpKvServer",
    "WrongTypeError",
    "encode_command",
    "encode_reply",
]
