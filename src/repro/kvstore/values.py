"""Typed values for the key-value store.

Redis keys hold typed values; we model the three types the experiments
exercise: strings (``bytes``), hashes (``dict[bytes, bytes]``), and
lists (``deque[bytes]``). Helpers here give each value a type name (for
``TYPE`` / WRONGTYPE errors) and a byte size (for soft and traditional
memory accounting).

A fourth, internal state joins them for the second-chance tier:
:class:`CompressedValue`, a zlib-deflated envelope around one of the
three client-visible types. It is never handed to a client — reads
promote (inflate) before returning — but it flows through the same
accounting helpers, so every ledger that sums ``value_bytes`` charges a
demoted entry at its *compressed* size automatically.
"""

from __future__ import annotations

from collections import deque
from typing import Union


class CompressedValue:
    """A demoted value: zlib bytes plus what it was before demotion.

    ``data`` is the compressed serialization (see ``repro.kvstore.tier``
    for the wire format), ``original_bytes`` the ``value_bytes`` of the
    resident value it replaced, and ``kind`` the persistence codec tag
    (``b"S"`` / ``b"H"`` / ``b"L"``) so ``TYPE`` can answer without
    inflating.
    """

    __slots__ = ("data", "original_bytes", "kind")

    def __init__(self, data: bytes, original_bytes: int, kind: bytes) -> None:
        self.data = data
        self.original_bytes = original_bytes
        self.kind = kind

    def __repr__(self) -> str:
        return (
            f"CompressedValue(kind={self.kind!r}, "
            f"compressed={len(self.data)}, original={self.original_bytes})"
        )


#: TYPE names by codec tag, for demoted entries
_KIND_NAMES = {b"S": b"string", b"H": b"hash", b"L": b"list"}

Value = Union[bytes, dict, deque, CompressedValue]


class WrongTypeError(Exception):
    """Operation applied to a key of the wrong type (Redis WRONGTYPE)."""

    MESSAGE = (
        "WRONGTYPE Operation against a key holding the wrong kind of value"
    )

    def __init__(self) -> None:
        super().__init__(self.MESSAGE)


def type_name(value: Value) -> bytes:
    """The Redis TYPE name for ``value``."""
    if isinstance(value, bytes):
        return b"string"
    if isinstance(value, dict):
        return b"hash"
    if isinstance(value, deque):
        return b"list"
    if isinstance(value, CompressedValue):
        return _KIND_NAMES[value.kind]
    raise TypeError(f"unsupported value type {type(value).__name__}")


def value_bytes(value: Value) -> int:
    """Payload bytes of a value (for memory accounting).

    A demoted value is charged at its compressed size — that is the
    whole point of the second-chance tier: demotion itself shrinks
    every ledger this helper feeds.
    """
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(len(f) + len(v) for f, v in value.items())
    if isinstance(value, deque):
        return sum(len(item) for item in value)
    if isinstance(value, CompressedValue):
        return len(value.data)
    raise TypeError(f"unsupported value type {type(value).__name__}")


def expect_type(value: Value, expected: type) -> Value:
    """Return ``value`` if it has the expected type, else WRONGTYPE."""
    if not isinstance(value, expected):
        raise WrongTypeError()
    return value
