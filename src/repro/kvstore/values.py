"""Typed values for the key-value store.

Redis keys hold typed values; we model the three types the experiments
exercise: strings (``bytes``), hashes (``dict[bytes, bytes]``), and
lists (``deque[bytes]``). Helpers here give each value a type name (for
``TYPE`` / WRONGTYPE errors) and a byte size (for soft and traditional
memory accounting).
"""

from __future__ import annotations

from collections import deque
from typing import Union

Value = Union[bytes, dict, deque]


class WrongTypeError(Exception):
    """Operation applied to a key of the wrong type (Redis WRONGTYPE)."""

    MESSAGE = (
        "WRONGTYPE Operation against a key holding the wrong kind of value"
    )

    def __init__(self) -> None:
        super().__init__(self.MESSAGE)


def type_name(value: Value) -> bytes:
    """The Redis TYPE name for ``value``."""
    if isinstance(value, bytes):
        return b"string"
    if isinstance(value, dict):
        return b"hash"
    if isinstance(value, deque):
        return b"list"
    raise TypeError(f"unsupported value type {type(value).__name__}")


def value_bytes(value: Value) -> int:
    """Payload bytes of a value (for memory accounting)."""
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(len(f) + len(v) for f, v in value.items())
    if isinstance(value, deque):
        return sum(len(item) for item in value)
    raise TypeError(f"unsupported value type {type(value).__name__}")


def expect_type(value: Value, expected: type) -> Value:
    """Return ``value`` if it has the expected type, else WRONGTYPE."""
    if not isinstance(value, expected):
        raise WrongTypeError()
    return value
