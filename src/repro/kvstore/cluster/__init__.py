"""The kvstore's **serving-plane cluster**: real shard processes.

Two packages in this repo are named "cluster"; they are unrelated:

* ``repro.kvstore.cluster`` (**this package**) is the *serving plane*:
  N real ``EventLoopKvServer`` OS processes, each owning a contiguous
  range of the 16384 CRC16 hash slots, ``MOVED`` redirects, a
  slot-routing client, and a supervisor that also hosts the one
  machine-wide Soft Memory Daemon all shards register with.
* ``repro.cluster`` is the *scheduling simulation*: a synthetic-trace
  Borg-like cluster scheduler used to quantify the paper's section-2
  claims (kill-based vs soft-memory-aware pressure policies). Nothing
  in it serves traffic.

Rule of thumb: if it opens a socket, it lives here; if it advances a
simulated clock, it lives in ``repro.cluster``.
"""

from repro.kvstore.cluster.slots import (
    SLOT_COUNT,
    command_keys,
    crc16,
    hash_tag,
    key_hash_slot,
    partition_slots,
)
from repro.kvstore.cluster.state import (
    ClusterNode,
    ClusterState,
    build_nodes,
    node_id_for,
    parse_moved,
)

# The client and supervisor pull in the TCP serving plane, whose
# command table imports this package's slots module — a cycle if they
# were imported eagerly here. PEP 562 lazy attributes break it: the
# dispatcher's import touches only slots/state, while
# ``from repro.kvstore.cluster import ClusterKvClient`` still works.
_LAZY = {
    "ClusterKvClient": "repro.kvstore.cluster.client",
    "ClusterSupervisor": "repro.kvstore.cluster.supervisor",
    "ShardProcess": "repro.kvstore.cluster.supervisor",
    "free_ports": "repro.kvstore.cluster.supervisor",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "SLOT_COUNT",
    "ClusterKvClient",
    "ClusterNode",
    "ClusterState",
    "ClusterSupervisor",
    "ShardProcess",
    "build_nodes",
    "command_keys",
    "crc16",
    "free_ports",
    "hash_tag",
    "key_hash_slot",
    "node_id_for",
    "parse_moved",
    "partition_slots",
]
