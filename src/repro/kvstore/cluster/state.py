"""Per-shard cluster topology: who owns which slots, MOVED replies.

A :class:`ClusterState` is attached to a shard's
:class:`~repro.kvstore.store.DataStore` (``store.attach_cluster``); the
command dispatcher consults it before executing any keyed command. The
topology is the boot-time node list — every shard is constructed with
the *same* ordered list of ``(host, port)`` endpoints and derives the
same slot ranges from :func:`~repro.kvstore.cluster.slots.partition_slots`,
so all shards agree on ownership without any gossip protocol.

Multi-key commands are accepted when every key lives on *this shard*
(slot-range granularity). That is a superset of Redis's same-slot rule:
with static ranges and no live resharding, two slots on one shard can
never be split apart mid-flight, so same-shard is exactly as safe and
strictly more permissive. Keys spanning shards answer ``CROSSSLOT``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.kvstore.cluster.slots import (
    SLOT_COUNT,
    command_keys,
    key_hash_slot,
    partition_slots,
)
from repro.kvstore.resp import RespError


def node_id_for(host: str, port: int) -> str:
    """Deterministic 40-hex node id (Redis shape) for an endpoint."""
    return hashlib.sha1(f"{host}:{port}".encode()).hexdigest()


@dataclass(frozen=True)
class ClusterNode:
    """One shard's endpoint and the inclusive slot range it owns."""

    index: int
    host: str
    port: int
    start: int
    end: int

    @property
    def node_id(self) -> str:
        return node_id_for(self.host, self.port)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def slot_count(self) -> int:
        return self.end - self.start + 1


def build_nodes(addresses: list[tuple[str, int]]) -> list[ClusterNode]:
    """Derive the canonical node list from ordered endpoints."""
    ranges = partition_slots(len(addresses))
    return [
        ClusterNode(i, host, int(port), start, end)
        for i, ((host, port), (start, end)) in enumerate(
            zip(addresses, ranges)
        )
    ]


class ClusterState:
    """One shard's view of the (static) cluster topology."""

    def __init__(
        self, shard_index: int, addresses: list[tuple[str, int]]
    ) -> None:
        self.nodes = build_nodes(addresses)
        if not 0 <= shard_index < len(self.nodes):
            raise ValueError(
                f"shard index {shard_index} outside node list "
                f"of {len(self.nodes)}"
            )
        self.shard_index = shard_index
        self.myself = self.nodes[shard_index]
        #: slot -> owning node, O(1) ownership checks on the hot path
        self._owner: list[ClusterNode] = [None] * SLOT_COUNT  # type: ignore[list-item]
        for node in self.nodes:
            for slot in range(node.start, node.end + 1):
                self._owner[slot] = node
        #: MOVED replies this shard has issued
        self.moved_replies = 0
        #: CROSSSLOT rejections this shard has issued
        self.crossslot_replies = 0

    @property
    def node_id(self) -> str:
        return self.myself.node_id

    def owner_of(self, slot: int) -> ClusterNode:
        return self._owner[slot]

    def owns(self, slot: int) -> bool:
        return self._owner[slot] is self.myself

    def check(self, argv: list) -> RespError | None:
        """MOVED/CROSSSLOT gate for one parsed command vector.

        Returns ``None`` when every key of the command lives on this
        shard (or the command is keyless); otherwise the error reply
        the dispatcher must answer instead of executing. Zero-copy
        ``memoryview`` payloads never appear at key positions (keys are
        argv[1] and the parser only hands out views at index >= 2 for
        the audited SET shapes), so keys are always ``bytes`` here.
        """
        keys = command_keys(argv)
        if not keys:
            return None
        myself = self.myself
        owner = self._owner
        first = owner[key_hash_slot(keys[0])]
        if len(keys) > 1:
            for key in keys[1:]:
                if owner[key_hash_slot(key)] is not first:
                    self.crossslot_replies += 1
                    return RespError(
                        "CROSSSLOT Keys in request don't hash to the "
                        "same slot"
                    )
        if first is myself:
            return None
        self.moved_replies += 1
        slot = key_hash_slot(keys[0])
        return RespError(f"MOVED {slot} {first.host}:{first.port}")


def parse_moved(message: str) -> tuple[int, tuple[str, int]] | None:
    """Parse a ``MOVED <slot> <host>:<port>`` error message.

    Returns ``(slot, (host, port))``, or ``None`` when the message is
    not a well-formed MOVED reply (clients treat those as ordinary
    errors).
    """
    parts = message.split()
    if len(parts) != 3 or parts[0] != "MOVED":
        return None
    host, sep, port = parts[2].rpartition(":")
    if not sep:
        return None
    try:
        return int(parts[1]), (host, int(port))
    except ValueError:
        return None
