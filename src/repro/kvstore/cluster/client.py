"""Cluster-aware RESP client: slot routing, MOVED chasing, pipelines.

:class:`ClusterKvClient` exposes the same ``execute`` /
``execute_pipeline`` API as :class:`~repro.kvstore.tcp.TcpKvClient`, so
every existing bench, soak, and harness can run against a cluster
unchanged. Internally it keeps:

* a slot→node map, bootstrapped from ``CLUSTER SLOTS`` against any
  reachable startup node and kept fresh from ``MOVED`` replies (a MOVED
  triggers one full map refresh, falling back to learning just that
  slot when the refresh fails);
* one pooled, pipelined :class:`TcpKvClient` connection per shard,
  dialed lazily and redialed after connection errors;
* per-destination pipeline splitting: a pipelined batch is grouped by
  owning shard, each group travels as one pipelined burst on that
  shard's connection, and the replies are stitched back into the
  caller's original command order.

Pointing the client at a *non*-cluster server degrades gracefully:
``CLUSTER SLOTS`` answers an empty array, the map stays empty, and
every command routes to the startup node — which is exactly the
overhead comparison ``bench_cluster.py`` measures.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.cluster.slots import (
    SLOT_COUNT,
    command_keys,
    key_hash_slot,
)
from repro.kvstore.cluster.state import parse_moved
from repro.kvstore.resp import RespError
from repro.kvstore.tcp import TcpKvClient

Address = tuple[str, int]


def _key_bytes(value: Any) -> bytes:
    """Mirror ``encode_command``'s coercion so routing hashes exactly
    the bytes that will travel on the wire."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, memoryview):
        return bytes(value)
    if isinstance(value, str):
        return value.encode()
    return str(value).encode()


class ClusterKvClient:
    """Slot-routing client over one pooled connection per shard."""

    def __init__(
        self,
        startup_nodes: list[Address],
        *,
        timeout: float = 5.0,
        connect_timeout: float | None = None,
        max_redirects: int = 5,
    ) -> None:
        if not startup_nodes:
            raise ValueError("need at least one startup node")
        self._startup = [(host, int(port)) for host, port in startup_nodes]
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._max_redirects = max_redirects
        self._conns: dict[Address, TcpKvClient] = {}
        #: slot -> owning address; None routes to the default node
        self._slots: list[Address | None] = [None] * SLOT_COUNT
        # key -> slot. A slot is a pure function of the key bytes, so
        # this never goes stale — topology changes move slot->address,
        # not key->slot. Bounded: wiped wholesale when full.
        self._slot_cache: dict[bytes, int] = {}
        self._default: Address = self._startup[0]
        self._closed = False
        self.moved_redirects = 0
        self.slot_map_refreshes = 0
        self.commands_sent = 0
        #: ``addr -> last replication coordinates seen`` — consulted
        #: when a node stops answering, so a dead shard reports its
        #: last-known offset instead of vanishing from the picture
        self.last_known_offsets: dict[str, dict[str, Any]] = {}
        self.refresh_slot_map()

    # -- topology ------------------------------------------------------

    def known_nodes(self) -> list[Address]:
        """Every distinct shard address the slot map currently names."""
        seen: dict[Address, None] = {self._default: None}
        for addr in self._slots:
            if addr is not None:
                seen[addr] = None
        return list(seen)

    def refresh_slot_map(self) -> bool:
        """Rebuild the slot map from ``CLUSTER SLOTS``.

        Tries the pooled/startup nodes in turn; returns ``True`` when a
        node answered (an *empty* answer counts — it means the server
        is not a cluster and the default node serves everything).
        """
        for addr in [*self.known_nodes(), *self._startup]:
            try:
                reply = self._conn(addr).execute(b"CLUSTER", b"SLOTS")
            except (OSError, RespError, ConnectionError):
                self._drop_conn(addr)
                continue
            if not isinstance(reply, list):
                continue
            slots: list[Address | None] = [None] * SLOT_COUNT
            for entry in reply:
                try:
                    start, end, node = entry[0], entry[1], entry[2]
                    host = node[0]
                    owner = (
                        host.decode() if isinstance(host, bytes) else host,
                        int(node[1]),
                    )
                except (TypeError, IndexError, ValueError):
                    continue
                for slot in range(int(start), int(end) + 1):
                    slots[slot] = owner
            self._slots = slots
            self.slot_map_refreshes += 1
            return True
        return False

    def replication_offsets(self) -> dict[str, dict[str, Any]]:
        """Per-node replication coordinates across the topology.

        Returns ``{"host:port": {role, offset, replid, stale}}``. A
        node that answers updates :attr:`last_known_offsets`; a node
        that refuses the connection reports its cached coordinates
        with ``stale: True`` — an unreachable shard's last-known
        offset is load-bearing during failover triage (who was
        furthest ahead?), so it must not be dropped.
        """
        out: dict[str, dict[str, Any]] = {}
        for host, port in self.known_nodes():
            key = f"{host}:{port}"
            try:
                payload = self._conn((host, port)).execute(
                    b"INFO", b"replication"
                )
                fields: dict[str, str] = {}
                for line in bytes(payload).decode().splitlines():
                    name, sep, value = line.partition(":")
                    if sep and not line.startswith("#"):
                        fields[name] = value
                entry = {
                    "role": fields.get("role"),
                    "offset": int(fields.get("master_repl_offset", 0)),
                    "replid": fields.get("replid"),
                    "stale": False,
                }
                self.last_known_offsets[key] = dict(entry)
            except (OSError, ConnectionError, RespError):
                self._drop_conn((host, port))
                cached = self.last_known_offsets.get(key)
                if cached is not None:
                    entry = {**cached, "stale": True}
                else:
                    entry = {
                        "role": None,
                        "offset": None,
                        "replid": None,
                        "stale": True,
                    }
            out[key] = entry
        return out

    def _addr_for(self, command: tuple) -> Address:
        # command_keys is pure sequence math (slices + len), so the
        # tuple goes in as-is — no per-command list copy on the hot path
        keys = command_keys(command)
        if not keys:
            return self._default
        key = keys[0]
        if not isinstance(key, bytes):
            key = _key_bytes(key)
        slot = self._slot_cache.get(key)
        if slot is None:
            slot = key_hash_slot(key)
            if len(self._slot_cache) >= 65536:
                self._slot_cache.clear()
            self._slot_cache[key] = slot
        return self._slots[slot] or self._default

    # -- connection pool -----------------------------------------------

    def _conn(self, addr: Address) -> TcpKvClient:
        client = self._conns.get(addr)
        if client is None:
            client = TcpKvClient(
                addr,
                timeout=self._timeout,
                connect_timeout=self._connect_timeout,
            )
            self._conns[addr] = client
        return client

    def _drop_conn(self, addr: Address) -> None:
        client = self._conns.pop(addr, None)
        if client is not None:
            client.close()

    def _note_moved(self, message: str) -> Address | None:
        """Account one MOVED reply and update the slot map."""
        moved = parse_moved(message)
        if moved is None:
            return None
        slot, addr = moved
        self.moved_redirects += 1
        # a MOVED means the map is stale wholesale (a shard moved or the
        # map was never learned): refresh everything in one round trip,
        # falling back to pinning just the slot we were told about
        if not self.refresh_slot_map() or self._slots[slot] != addr:
            self._slots[slot] = addr
        return addr

    # -- the TcpKvClient API -------------------------------------------

    def execute(self, *args: Any) -> Any:
        """Send one command to its owning shard, chasing redirects."""
        addr = self._addr_for(args)
        redialed: set[Address] = set()
        for _ in range(self._max_redirects + 1):
            self.commands_sent += 1
            try:
                return self._conn(addr).execute(*args)
            except RespError as exc:
                target = self._note_moved(exc.message)
                if target is None:
                    raise
                addr = target
            except (OSError, ConnectionError):
                # a dead pooled socket usually means the shard process
                # restarted on its address: redial once before giving up
                self._drop_conn(addr)
                if addr in redialed:
                    raise
                redialed.add(addr)
        raise RespError(f"ERR too many cluster redirects for {args[:1]!r}")

    def execute_pipeline(self, *commands: tuple) -> list[Any]:
        """Pipeline a batch, split per destination shard.

        Commands are grouped by owning shard preserving their original
        indices, each group travels as one pipelined burst, and the
        reply list comes back in the caller's order. MOVED replies
        inside a burst are chased individually (they refresh the map
        first, so a stale map costs one refresh plus the strays — not a
        burst per slot). Like ``TcpKvClient.execute_pipeline``, error
        replies are returned in place, never raised.
        """
        if not commands:
            return []
        groups: dict[Address, list[int]] = {}
        for index, command in enumerate(commands):
            groups.setdefault(self._addr_for(command), []).append(index)
        replies: list[Any] = [None] * len(commands)
        strays: list[tuple[int, str]] = []
        for addr, indices in groups.items():
            self.commands_sent += len(indices)
            try:
                burst = self._conn(addr).execute_pipeline(
                    *(commands[i] for i in indices)
                )
            except (OSError, ConnectionError):
                # shard restarted on its address: redial once and resend
                # the burst — pipelined batches are the loadgen hot path
                # and must survive a mid-run shard bounce. A second
                # failure propagates: the shard is really down.
                self._drop_conn(addr)
                burst = self._conn(addr).execute_pipeline(
                    *(commands[i] for i in indices)
                )
            for i, reply in zip(indices, burst):
                if isinstance(reply, RespError) and reply.message.startswith(
                    "MOVED "
                ):
                    strays.append((i, reply.message))
                else:
                    replies[i] = reply
        if strays:
            # every MOVED counts toward the redirect rate, but one map
            # refresh covers the whole stale batch; the re-executes then
            # route on the fresh map (chasing further individually only
            # if the refresh under-delivered)
            self._note_moved(strays[0][1])
            self.moved_redirects += len(strays) - 1
            for i, __ in strays:
                try:
                    replies[i] = self.execute(*commands[i])
                except RespError as exc:
                    replies[i] = exc
        return replies

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for addr in list(self._conns):
            self._drop_conn(addr)

    def __enter__(self) -> "ClusterKvClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
