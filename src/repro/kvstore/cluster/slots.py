"""Redis-compatible hash slots: CRC16, ``{hash tag}``, slot ranges.

The cluster serving plane partitions the keyspace into
:data:`SLOT_COUNT` (16384) slots. A key's slot is the CRC16 of its
*hash tag* — the substring between the first ``{`` and the first
following ``}``, when that substring is non-empty — masked to 14 bits,
exactly the ``keyHashSlot`` function from Redis's ``cluster.c``. The
tag rule lets callers pin related keys (``{user:1}:name``,
``{user:1}:inbox``) to one shard so multi-key commands stay local.

Slot ranges here are *static*: :func:`partition_slots` deals
contiguous, gap-free, non-overlapping ranges to N shards at cluster
boot, and no live resharding exists — which is why the serving plane
only ever answers ``MOVED`` (permanent owner), never ``ASK``
(migration in flight).

CRC16 parameters (CCITT / XMODEM, the ones Redis documents in
``cluster-spec``): polynomial 0x1021, init 0x0000, no reflection, no
final xor. ``crc16(b"123456789") == 0x31C3``.
"""

from __future__ import annotations

#: total hash slots in a cluster (Redis: 16384 = 2**14)
SLOT_COUNT = 16384

_POLY = 0x1021


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) if crc & 0x8000 else (crc << 1)
        table.append(crc & 0xFFFF)
    return tuple(table)


_CRC16_TABLE = _build_table()


def crc16(data: bytes) -> int:
    """CRC16-CCITT (XMODEM) over ``data`` — Redis's slot hash."""
    crc = 0
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[((crc >> 8) ^ byte) & 0xFF]
    return crc


def hash_tag(key: bytes) -> bytes:
    """The substring actually hashed for ``key``.

    Mirrors Redis ``keyHashSlot``: find the first ``{``; if a ``}``
    follows it and the span between them is non-empty, hash only that
    span. An empty tag (``{}``), an unclosed ``{``, or no braces at
    all hash the whole key. Only the *first* ``{`` is considered, so
    ``foo{bar}{zap}`` hashes ``bar`` and ``foo{{bar}}`` hashes
    ``{bar``.
    """
    start = key.find(b"{")
    if start == -1:
        return key
    end = key.find(b"}", start + 1)
    if end == -1 or end == start + 1:
        return key
    return key[start + 1:end]


def key_hash_slot(key: bytes) -> int:
    """Map ``key`` to its hash slot (0..16383)."""
    return crc16(hash_tag(key)) & (SLOT_COUNT - 1)


def partition_slots(shards: int) -> list[tuple[int, int]]:
    """Deal all 16384 slots to ``shards`` contiguous inclusive ranges.

    The first ``SLOT_COUNT % shards`` shards take one extra slot, the
    way ``redis-cli --cluster create`` deals ranges; the ranges cover
    every slot exactly once, in order.
    """
    if shards < 1:
        raise ValueError("a cluster needs at least one shard")
    if shards > SLOT_COUNT:
        raise ValueError(f"more shards than slots ({shards} > {SLOT_COUNT})")
    base, extra = divmod(SLOT_COUNT, shards)
    ranges = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size - 1))
        start += size
    return ranges


# ----------------------------------------------------------------------
# command key extraction
# ----------------------------------------------------------------------
#
# The dispatch-side MOVED check and the cluster client both need to know
# which argv positions are keys. The table below covers every command in
# ``repro.kvstore.commands``; commands absent from all sets follow the
# default rule (first key at argv[1]), which is correct for the whole
# single-key family (GET/SET/INCR/HSET/LPUSH/...).

#: commands that reference no key at all — never redirected
KEYLESS = frozenset((
    b"PING", b"ECHO", b"INFO", b"SLOWLOG", b"CONFIG", b"DBSIZE",
    b"FLUSHALL", b"SAVE", b"BGSAVE", b"BGREWRITEAOF", b"LASTSAVE",
    b"CLUSTER", b"KEYS", b"SCAN", b"RANDOMKEY", b"MEMORY",
))

#: every argument is a key
_ALL_KEYS = frozenset((b"MGET", b"DEL", b"EXISTS"))

#: keys at odd positions (key value key value ...)
_KV_PAIRS = frozenset((b"MSET",))

#: exactly two keys, at argv[1] and argv[2]
_TWO_KEYS = frozenset((b"RENAME", b"RENAMENX"))


def command_keys(argv):
    """The key arguments of one parsed command vector (any sequence).

    Returns an empty (possibly sliced) sequence for keyless commands
    and the empty vector. Unknown commands follow the default
    first-key rule so a future single-key command is redirected
    correctly without a table update; a future *multi*-key command
    must be added to the sets above.
    """
    if len(argv) < 2:
        return []
    name = argv[0].upper()
    if name in KEYLESS:
        return []
    if name in _ALL_KEYS:
        return argv[1:]
    if name in _KV_PAIRS:
        return argv[1::2]
    if name in _TWO_KEYS:
        return argv[1:3]
    return argv[1:2]
