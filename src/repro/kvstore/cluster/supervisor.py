"""Shard-process lifecycle: spawn, health-check, restart, tear down.

:class:`ClusterSupervisor` turns one machine into a hash-slot cluster:

* it hosts the **one machine-wide Soft Memory Daemon** — an
  :class:`~repro.rpc.server.RpcDaemonServer` on a unix socket — that
  every shard process registers with, so soft budgets, reclamation
  weights, and degraded-mode denials span all shards (the paper's
  Figure 1 topology with the serving plane as the workload);
* it spawns N ``python -m repro.tools.kv_server`` shard processes, each
  given the same ordered node list (from which all shards derive
  identical slot ranges) plus its own index, and waits for each
  shard's ``READY`` line;
* a monitor thread health-checks shards over RESP ``PING`` and
  restarts any shard that crashed or stopped answering (same index,
  same port, same data dir — a restarted durable shard recovers its
  keyspace);
* ``stop()`` fans SIGTERM out to every shard, waits for graceful
  shutdown (each shard seals its AOF), escalates to SIGKILL on
  stragglers, then stops the daemon.

Ports are pre-allocated by binding-and-releasing so every shard knows
the full ``host:port`` table *before* any shard starts — MOVED replies
need the table at boot, and a restarted shard must come back on the
same port its siblings advertise.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.kvstore.tcp import TcpKvClient
from repro.rpc.server import RpcDaemonServer

Address = tuple[str, int]

_SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
)


def free_ports(host: str, count: int) -> list[int]:
    """Reserve ``count`` distinct free TCP ports on ``host``.

    Binds them all simultaneously (so the kernel cannot deal the same
    port twice) and releases them together; the usual small window
    before the shards re-bind is acceptable for a single-machine
    cluster boot.
    """
    socks = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            socks.append(sock)
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


class ShardProcess:
    """One supervised shard: its spec, its live process, its history."""

    def __init__(self, index: int, address: Address) -> None:
        self.index = index
        self.address = address
        self.proc: subprocess.Popen | None = None
        self.restarts = 0
        self.ping_failures = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ClusterSupervisor:
    """Spawn and babysit N shard processes under one SMD."""

    def __init__(
        self,
        shards: int = 2,
        *,
        host: str = "127.0.0.1",
        ports: list[int] | None = None,
        soft_capacity_pages: int = 4096,
        startup_budget_pages: int = 16,
        data_dir: str | None = None,
        workdir: str | None = None,
        health_interval: float = 0.5,
        ping_timeout: float = 2.0,
        max_ping_failures: int = 3,
        restart: bool = True,
        shard_args: tuple[str, ...] = (),
    ) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.host = host
        self.workdir = workdir or tempfile.mkdtemp(prefix="kv-cluster-")
        self.data_dir = data_dir
        self.health_interval = health_interval
        self.ping_timeout = ping_timeout
        self.max_ping_failures = max_ping_failures
        self.restart = restart
        self.shard_args = tuple(shard_args)
        self.startup_budget_pages = startup_budget_pages
        if ports is None:
            ports = free_ports(host, shards)
        elif len(ports) != shards:
            raise ValueError("need exactly one port per shard")
        self.shards = [
            ShardProcess(i, (host, port)) for i, port in enumerate(ports)
        ]
        self.smd_socket = os.path.join(self.workdir, "smd.sock")
        from repro.daemon.smd import SmdConfig

        self.daemon = RpcDaemonServer(
            self.smd_socket,
            soft_capacity_pages,
            SmdConfig(startup_budget_pages=startup_budget_pages),
        )
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._spawn_lock = threading.Lock()
        self.shards_restarted = 0  # lifetime, across all shards

    # -- lifecycle -----------------------------------------------------

    @property
    def addresses(self) -> list[Address]:
        return [shard.address for shard in self.shards]

    @property
    def smd(self):
        """The machine-wide daemon's policy core (ledgers, counters)."""
        return self.daemon.smd

    def start(self, *, ready_timeout: float = 30.0) -> "ClusterSupervisor":
        self.daemon.start()
        for shard in self.shards:
            self._spawn(shard, ready_timeout=ready_timeout)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="kv-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, *, grace: float = 15.0) -> None:
        """SIGTERM fan-out, graceful wait, SIGKILL stragglers, stop SMD."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=grace)
        for shard in self.shards:  # fan out first, then wait: shards
            if shard.alive:  # shut down in parallel, not serially
                shard.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + grace
        for shard in self.shards:
            if shard.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shard.proc.kill()
                shard.proc.wait(timeout=5)
            if shard.proc.stdout is not None:
                shard.proc.stdout.close()
        self.daemon.stop()

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- spawning ------------------------------------------------------

    def _shard_argv(self, shard: ShardProcess) -> list[str]:
        nodes = ",".join(f"{h}:{p}" for h, p in self.addresses)
        argv = [
            sys.executable, "-m", "repro.tools.kv_server",
            "--cluster-shard", str(shard.index),
            "--cluster-nodes", nodes,
            "--smd-socket", self.smd_socket,
        ]
        if self.data_dir is not None:
            shard_dir = os.path.join(self.data_dir, f"shard-{shard.index}")
            os.makedirs(shard_dir, exist_ok=True)
            argv += ["--dir", shard_dir]
        argv += list(self.shard_args)
        return argv

    def _spawn(self, shard: ShardProcess, *, ready_timeout: float) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        stderr_path = os.path.join(
            self.workdir, f"shard-{shard.index}.stderr"
        )
        with open(stderr_path, "ab") as stderr:
            shard.proc = subprocess.Popen(
                self._shard_argv(shard),
                stdout=subprocess.PIPE,
                stderr=stderr,
                env=env,
                text=True,
            )
        shard.ping_failures = 0
        self._await_ready(shard, ready_timeout, stderr_path)

    def _await_ready(
        self, shard: ShardProcess, timeout: float, stderr_path: str
    ) -> None:
        line = ""
        done = threading.Event()

        def read() -> None:
            nonlocal line
            line = shard.proc.stdout.readline().strip()
            done.set()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        if not done.wait(timeout) or not line.startswith("READY "):
            shard.proc.kill()
            try:
                with open(stderr_path) as fh:
                    detail = fh.read()[-2000:]
            except OSError:
                detail = ""
            raise RuntimeError(
                f"shard {shard.index} failed to start "
                f"(got {line!r}):\n{detail}"
            )

    # -- health --------------------------------------------------------

    def ping(self, shard: ShardProcess) -> bool:
        """One RESP PING against a shard; False on any failure."""
        try:
            with TcpKvClient(
                shard.address,
                timeout=self.ping_timeout,
                connect_timeout=self.ping_timeout,
            ) as client:
                return client.execute(b"PING") == "PONG"
        except Exception:
            return False

    def ping_all(self) -> list[bool]:
        return [self.ping(shard) for shard in self.shards]

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            for shard in self.shards:
                if self._stop.is_set():
                    return
                if not shard.alive:
                    if self.restart:
                        self._restart(shard, reason="exited")
                    continue
                if self.ping(shard):
                    shard.ping_failures = 0
                    continue
                shard.ping_failures += 1
                if (
                    self.restart
                    and shard.ping_failures >= self.max_ping_failures
                ):
                    shard.proc.kill()
                    shard.proc.wait(timeout=10)
                    self._restart(shard, reason="unresponsive")

    def _restart(self, shard: ShardProcess, *, reason: str) -> None:
        with self._spawn_lock:
            if self._stop.is_set() or shard.alive:
                return
            if shard.proc is not None and shard.proc.stdout is not None:
                shard.proc.stdout.close()
            shard.restarts += 1
            self.shards_restarted += 1
            try:
                self._spawn(shard, ready_timeout=30.0)
            except RuntimeError:
                # spawn failed (port still in TIME_WAIT, transient fork
                # pressure): leave the shard dead for this round — the
                # monitor retries on its next tick
                pass
