"""Bytes-in / bytes-out server front-end.

Like Redis, the server is single-threaded: it consumes a client's RESP
byte stream, executes each complete command against the store, and
emits the RESP replies. Transport is left to the caller (the tests and
examples drive it in-process; a socket loop would simply shuttle bytes).
"""

from __future__ import annotations

from repro.kvstore.commands import dispatch
from repro.kvstore.resp import ProtocolError, RespError, RespParser, encode_reply
from repro.kvstore.store import DataStore


class KvServer:
    """One server instance bound to one :class:`DataStore`."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self._parser = RespParser()
        self.commands_processed = 0
        self.protocol_errors = 0

    def feed(self, data: bytes) -> bytes:
        """Process raw client bytes; return the concatenated replies.

        Incomplete trailing commands stay buffered for the next feed —
        exactly how a socket server handles short reads.
        """
        self._parser.feed(data)
        out = bytearray()
        try:
            commands = self._parser.parse_all()
        except ProtocolError as exc:
            # Real Redis closes the connection on a protocol error; the
            # in-process equivalent is dropping the poisoned input
            # buffer so the session can continue with fresh commands.
            self._parser = RespParser()
            self.protocol_errors += 1
            return encode_reply(RespError(f"ERR protocol error: {exc}"))
        for argv in commands:
            out.extend(self._run(argv))
        return bytes(out)

    def _run(self, argv: object) -> bytes:
        if not isinstance(argv, list) or not all(
            isinstance(a, bytes) for a in argv
        ):
            return encode_reply(
                RespError("ERR protocol error: expected array of bulk strings")
            )
        self.commands_processed += 1
        return encode_reply(dispatch(self.store, argv))

    def __repr__(self) -> str:
        return (
            f"<KvServer store={self.store.name!r} "
            f"processed={self.commands_processed}>"
        )
