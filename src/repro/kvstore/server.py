"""Bytes-in / bytes-out server front-end.

Like Redis, the server is single-threaded: it consumes a client's RESP
byte stream, executes each complete command against the store, and
emits the RESP replies. Transport is left to the caller (the tests and
examples drive it in-process; the TCP front-ends shuttle bytes).

The hot path is :meth:`KvServer.feed_batch`: it parses and executes
every complete command in one pass and encodes the replies directly
into a caller-owned output buffer, so a pipelined batch costs zero
intermediate ``bytes`` copies between parse, dispatch, and encode.
"""

from __future__ import annotations

from repro.kvstore.commands import dispatch
from repro.kvstore.resp import (
    NULL,
    ProtocolError,
    RespError,
    RespParser,
    encode_reply_into,
)
from repro.kvstore.store import DataStore

_BAD_ARGV = RespError("ERR protocol error: expected array of bulk strings")


class KvServer:
    """One server instance bound to one :class:`DataStore`."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self._parser = RespParser()
        self.commands_processed = 0
        self.protocol_errors = 0

    def feed_batch(self, data: bytes, out: bytearray) -> int:
        """Process raw client bytes, appending replies to ``out``.

        Returns the number of commands executed. Incomplete trailing
        commands stay buffered for the next feed — exactly how a socket
        server handles short reads. On a malformed frame the commands
        parsed *before* the poison still execute and reply (pipelined
        clients must not lose completed work), then a protocol-error
        reply is appended and the rest of the poisoned buffer dropped,
        the in-process equivalent of Redis closing the connection.
        """
        parser = self._parser
        parser.feed(data)
        executed = 0
        store = self.store
        while True:
            try:
                argv = parser.parse_one()
            except ProtocolError as exc:
                self._parser = RespParser()
                self.protocol_errors += 1
                encode_reply_into(
                    out, RespError(f"ERR protocol error: {exc}")
                )
                break
            if argv is None:
                break
            if argv is NULL:  # a client sent a RESP null as a "command"
                argv = None
            if type(argv) is list and all(type(a) is bytes for a in argv):
                self.commands_processed += 1
                encode_reply_into(out, dispatch(store, argv))
            else:
                encode_reply_into(out, _BAD_ARGV)
            executed += 1
        return executed

    def feed(self, data: bytes) -> bytes:
        """Process raw client bytes; return the concatenated replies."""
        out = bytearray()
        self.feed_batch(data, out)
        return bytes(out)

    def feed_input(self, data: bytes) -> None:
        """Buffer raw client bytes without executing anything.

        Pair with :meth:`pop_reply` for command-at-a-time serving.
        """
        self._parser.feed(data)

    def pop_reply(self) -> bytes | None:
        """Parse and execute at most one buffered command.

        Returns that command's encoded reply, or ``None`` when no
        complete command is buffered. This is the classical
        thread-per-connection serving step — the caller takes its lock
        and writes the reply once *per command* — kept as the measured
        contrast to :meth:`feed_batch`'s one-lock-per-batch hot path.
        """
        out = bytearray()
        try:
            argv = self._parser.parse_one()
        except ProtocolError as exc:
            self._parser = RespParser()
            self.protocol_errors += 1
            encode_reply_into(out, RespError(f"ERR protocol error: {exc}"))
            return bytes(out)
        if argv is None:
            return None
        if argv is NULL:  # a client sent a RESP null as a "command"
            argv = None
        if type(argv) is list and all(type(a) is bytes for a in argv):
            self.commands_processed += 1
            encode_reply_into(out, dispatch(self.store, argv))
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def _run(self, argv: object) -> bytes:
        """Execute one already-parsed command vector (compat shim)."""
        out = bytearray()
        if type(argv) is list and all(type(a) is bytes for a in argv):
            self.commands_processed += 1
            encode_reply_into(out, dispatch(self.store, argv))
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def __repr__(self) -> str:
        return (
            f"<KvServer store={self.store.name!r} "
            f"processed={self.commands_processed}>"
        )
