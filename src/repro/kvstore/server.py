"""Bytes-in / bytes-out server front-end.

Like Redis, the server is single-threaded: it consumes a client's RESP
byte stream, executes each complete command against the store, and
emits the RESP replies. Transport is left to the caller (the tests and
examples drive it in-process; the TCP front-ends shuttle bytes).

The hot path is :meth:`KvServer.feed_batch`: it parses and executes
every complete command in one pass and encodes the replies directly
into a caller-owned output buffer, so a pipelined batch costs zero
intermediate ``bytes`` copies between parse, dispatch, and encode.

Per-command latency feeds the store's observability plane
(``store.obs``) at one clock read per command: the end-of-command
timestamp of command *i* is the start timestamp of command *i+1*, so a
pipelined batch pays ``perf_counter`` once per command, not twice.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter

from repro.kvstore.commands import dispatch
from repro.kvstore.resp import (
    NULL,
    ProtocolError,
    RespError,
    RespParser,
    encode_reply_into,
)
from repro.kvstore.store import DataStore

_BAD_ARGV = RespError("ERR protocol error: expected array of bulk strings")


class KvServer:
    """One server instance bound to one :class:`DataStore`."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self.obs = store.obs
        self._parser = RespParser()
        self.commands_processed = 0
        self.protocol_errors = 0

    def feed_batch(self, data: bytes, out: bytearray) -> int:
        """Process raw client bytes, appending replies to ``out``.

        Returns the number of commands executed. Incomplete trailing
        commands stay buffered for the next feed — exactly how a socket
        server handles short reads. On a malformed frame the commands
        parsed *before* the poison still execute and reply (pipelined
        clients must not lose completed work), then a protocol-error
        reply is appended and the rest of the poisoned buffer dropped,
        the in-process equivalent of Redis closing the connection.
        """
        parser = self._parser
        parser.feed(data)
        executed = 0
        dispatched = 0
        observed = 0
        store = self.store
        obs = self.obs
        # the observation is inlined (not a call to obs.observe_command)
        # because this loop is the serving hot path: with the cell map,
        # bounds, and slowlog threshold hoisted to locals, the cost per
        # command is one clock read, one dict get, one bisect, and one
        # cell update.  The threshold is sampled per batch, so a CONFIG
        # SET takes effect from the next readable event.
        cell_of = obs._cmd_cells.get
        learn = obs._learn_command
        bounds = obs._bounds
        slow_s = obs._slow_s
        slowlog_add = obs.slowlog.add
        parse_one = parser.parse_one
        encode = encode_reply_into
        start = perf_counter()
        while True:
            try:
                argv = parse_one()
            except ProtocolError as exc:
                self._parser = RespParser()
                self.protocol_errors += 1
                obs.protocol_errors += 1
                encode(out, RespError(f"ERR protocol error: {exc}"))
                break
            if argv is None:
                break
            if argv is NULL:  # a client sent a RESP null as a "command"
                argv = None
            if parser.command_fast or (
                type(argv) is list
                and all(type(a) is bytes for a in argv)
            ):
                dispatched += 1
                encode(out, dispatch(store, argv))
                end = perf_counter()
                if argv:
                    cell = cell_of(argv[0])
                    if cell is None:
                        cell = learn(argv[0])
                    duration = end - start
                    cell.observe(bisect_left(bounds, duration), duration)
                    observed += 1
                    if duration >= slow_s:
                        slowlog_add(argv, duration)
                start = end
            else:
                encode(out, _BAD_ARGV)
                start = perf_counter()
            executed += 1
        self.commands_processed += dispatched
        obs.commands += observed
        return executed

    def feed(self, data: bytes) -> bytes:
        """Process raw client bytes; return the concatenated replies."""
        out = bytearray()
        self.feed_batch(data, out)
        return bytes(out)

    def feed_input(self, data: bytes) -> None:
        """Buffer raw client bytes without executing anything.

        Pair with :meth:`pop_reply` for command-at-a-time serving.
        """
        self._parser.feed(data)

    def pop_reply(self) -> bytes | None:
        """Parse and execute at most one buffered command.

        Returns that command's encoded reply, or ``None`` when no
        complete command is buffered. This is the classical
        thread-per-connection serving step — the caller takes its lock
        and writes the reply once *per command* — kept as the measured
        contrast to :meth:`feed_batch`'s one-lock-per-batch hot path.
        """
        out = bytearray()
        try:
            argv = self._parser.parse_one()
        except ProtocolError as exc:
            self._parser = RespParser()
            self.protocol_errors += 1
            self.obs.protocol_errors += 1
            encode_reply_into(out, RespError(f"ERR protocol error: {exc}"))
            return bytes(out)
        if argv is None:
            return None
        if argv is NULL:  # a client sent a RESP null as a "command"
            argv = None
        if self._parser.command_fast or (
            type(argv) is list and all(type(a) is bytes for a in argv)
        ):
            self.commands_processed += 1
            start = perf_counter()
            encode_reply_into(out, dispatch(self.store, argv))
            if argv:
                self.obs.observe_command(
                    argv[0], perf_counter() - start, argv
                )
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def _run(self, argv: object) -> bytes:
        """Execute one already-parsed command vector (compat shim)."""
        out = bytearray()
        if type(argv) is list and all(type(a) is bytes for a in argv):
            self.commands_processed += 1
            start = perf_counter()
            encode_reply_into(out, dispatch(self.store, argv))
            if argv:
                self.obs.observe_command(
                    argv[0], perf_counter() - start, argv
                )
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def __repr__(self) -> str:
        return (
            f"<KvServer store={self.store.name!r} "
            f"processed={self.commands_processed}>"
        )
