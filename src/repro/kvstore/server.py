"""Bytes-in / bytes-out server front-end.

Like Redis, the server is single-threaded: it consumes a client's RESP
byte stream, executes each complete command against the store, and
emits the RESP replies. Transport is left to the caller (the tests and
examples drive it in-process; the TCP front-ends shuttle bytes).

The hot path is :meth:`KvServer.pump`: the parser drains every
complete pipelined command in one tight loop
(:meth:`~repro.kvstore.resp.RespParser.parse_pipeline`), then this
module executes the batch and encodes the replies directly into a
caller-owned output buffer — zero intermediate ``bytes`` copies
between parse, dispatch, and encode. The TCP front-ends go one step
further and ``recv_into`` the parser's buffer, so inbound payload
bytes are copied exactly once off the socket.

Zero-copy argv discipline: the parser hands bulk payloads >=
:data:`ZERO_COPY_THRESHOLD` bytes out as ``memoryview`` slices of its
buffer (argv index >= 2 only). Those views die with the batch — before
dispatch, :func:`_keeps_views` decides per command shape whether its
handler is audited to sink views safely (the SET family materializes
inside ``DataStore.set``); every other command gets views materialized
to ``bytes`` up front, and the slowlog always receives materialized
argv. See DESIGN.md §7.

Per-command latency feeds the store's observability plane
(``store.obs``) at one clock read per command: the end-of-command
timestamp of command *i* is the start timestamp of command *i+1*, so a
pipelined batch pays ``perf_counter`` once per command, not twice.

A :class:`~repro.kvstore.resp.ProtocolError` quarantines the parser
(commands parsed before the poison still execute and reply), appends
one protocol-error reply, and records the dropped remainder of the
poisoned buffer in ``protocol_errors`` / ``bytes_dropped`` and the obs
plane's ``protocol_dropped_bytes`` — the in-process equivalent of
Redis closing the connection, but with the drop visible in stats.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter

from repro.kvstore.commands import dispatch
from repro.kvstore.resp import (
    NULL,
    PIPELINE_MORE,
    ProtocolError,
    RespError,
    RespParser,
    encode_reply_into,
)
from repro.kvstore.store import DataStore

_BAD_ARGV = RespError("ERR protocol error: expected array of bulk strings")

#: bulk payloads at least this large are parsed zero-copy (memoryview
#: slices of the parser buffer); below it a ``bytes`` copy is cheaper
#: than the view bookkeeping
ZERO_COPY_THRESHOLD = 512

# Command shapes whose handlers are audited to tolerate ``memoryview``
# payloads in argv[2:]: they only pass values into ``DataStore.set``
# (which materializes) and never call bytes methods on them. Seeded
# with the canonical casings clients actually send; any other casing
# just loses the zero-copy fast path, never correctness.
_SET3 = frozenset((b"SET", b"set", b"SETNX", b"setnx", b"GETSET", b"getset"))
_SET4 = frozenset((b"SETEX", b"setex", b"PSETEX", b"psetex"))
_MSET = frozenset((b"MSET", b"mset"))

# Commands the transport may intercept via ``repl_hook``: they need the
# event loop's socket machinery (feed registration, deferred PSYNC
# replies, blocking WAIT), which plain dispatch cannot reach. Canonical
# casings only — an exotic casing falls through to the dispatch
# fallbacks, which answer with a redirect-to-event-loop error.
_REPL_NAMES = frozenset((
    b"PSYNC", b"psync", b"REPLCONF", b"replconf",
    b"WAIT", b"wait", b"REPLICAOF", b"replicaof",
))


def _keeps_views(argv: list) -> bool:
    """May ``argv`` reach its handler with memoryview payloads intact?

    Only exact audited shapes qualify — ``SET key value EX 10`` (len 5)
    scans its options with ``bytes`` methods, so it must not keep
    views even though plain ``SET key value`` (len 3) may.
    """
    n = len(argv)
    if n == 3:
        return argv[0] in _SET3
    if n == 4:
        return argv[0] in _SET4
    return argv[0] in _MSET


def _materialize_views(argv: list) -> None:
    """Replace memoryview elements of ``argv`` with ``bytes`` copies."""
    for i in range(2, len(argv)):
        if type(argv[i]) is memoryview:
            argv[i] = bytes(argv[i])


def _copy_argv(argv: list) -> list:
    """A retainable copy of ``argv`` (views materialized) for the slowlog."""
    return [bytes(a) if type(a) is memoryview else a for a in argv]


class KvServer:
    """One server instance bound to one :class:`DataStore`."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self.obs = store.obs
        self._parser = RespParser(zero_copy_threshold=ZERO_COPY_THRESHOLD)
        self.commands_processed = 0
        self.protocol_errors = 0
        #: bytes fed but discarded by protocol-error quarantines
        self.bytes_dropped = 0
        #: transport-installed interceptor for replication commands
        #: (``hook(argv, out)`` encodes its own reply — or defers it,
        #: as PSYNC does); None costs the hot loop one identity check
        self.repl_hook = None

    @property
    def parser(self) -> RespParser:
        """The session's parser (TCP front-ends ``recv_into`` its buffer)."""
        return self._parser

    def pump(self, out: bytearray) -> int:
        """Execute every complete buffered command, replies into ``out``.

        The serving hot path: callers land raw client bytes in the
        parser (:meth:`feed_batch`, or zero-copy via
        ``parser.recv_view`` + ``parser.commit_recv``) and pump.
        Returns the number of commands executed. Incomplete trailing
        commands stay buffered for the next feed — exactly how a
        socket server handles short reads. On a malformed frame the
        commands parsed *before* the poison still execute and reply
        (pipelined clients must not lose completed work), then a
        protocol-error reply is appended and the rest of the poisoned
        buffer dropped — recorded in ``protocol_errors`` /
        ``bytes_dropped`` and the obs plane, never silently.
        """
        parser = self._parser
        executed = 0
        dispatched = 0
        observed = 0
        store = self.store
        obs = self.obs
        # the observation is inlined (not a call to obs.observe_command)
        # because this loop is the serving hot path: with the cell map,
        # bounds, and slowlog threshold hoisted to locals, the cost per
        # command is one clock read, one dict get, one bisect, and one
        # cell update.  The threshold is sampled per batch, so a CONFIG
        # SET takes effect from the next readable event.
        cell_of = obs._cmd_cells.get
        learn = obs._learn_command
        bounds = obs._bounds
        slow_s = obs._slow_s
        slowlog_add = obs.slowlog.add
        encode = encode_reply_into
        run = dispatch
        hook = self.repl_hook
        frames: list[list] = []
        while True:
            views_before = parser.views_created
            error: ProtocolError | None = None
            try:
                status = parser.parse_pipeline(frames)
            except ProtocolError as exc:
                error = exc
                status = PIPELINE_MORE  # quarantined: buffer is empty
            if frames:
                if parser.views_created != views_before:
                    # the batch carries zero-copy payloads: commands
                    # outside the audited shapes get bytes up front
                    for argv in frames:
                        if argv and not _keeps_views(argv):
                            _materialize_views(argv)
                start = perf_counter()
                for argv in frames:
                    dispatched += 1
                    if hook is not None and argv and argv[0] in _REPL_NAMES:
                        hook(argv, out)
                    else:
                        encode(out, run(store, argv))
                    end = perf_counter()
                    if argv:
                        cell = cell_of(argv[0])
                        if cell is None:
                            cell = learn(argv[0])
                        duration = end - start
                        cell.observe(bisect_left(bounds, duration), duration)
                        observed += 1
                        if duration >= slow_s:
                            slowlog_add(_copy_argv(argv), duration)
                    start = end
                executed += len(frames)
                frames.clear()
            if error is not None:
                self._record_error(error, out)
                break
            if status == PIPELINE_MORE:
                break
            # PIPELINE_FALLBACK: one frame that is not a plain command
            # array (another RESP type, a null, a mixed array) — pop it
            # with the generic parser and answer like Redis would
            try:
                argv = parser.parse_one()
            except ProtocolError as exc:
                self._record_error(exc, out)
                break
            if argv is None:
                break
            if argv is NULL:  # a client sent a RESP null as a "command"
                argv = None
            if type(argv) is list and all(type(a) is bytes for a in argv):
                dispatched += 1
                begin = perf_counter()
                encode(out, dispatch(store, argv))
                if argv:
                    # observe_command counts into obs.commands itself,
                    # so this command must stay out of ``observed``
                    obs.observe_command(argv[0], perf_counter() - begin, argv)
            else:
                encode(out, _BAD_ARGV)
            executed += 1
        self.commands_processed += dispatched
        obs.commands += observed
        return executed

    def _record_error(self, exc: ProtocolError, out: bytearray) -> None:
        """Account one parser quarantine and append its error reply."""
        obs = self.obs
        self.protocol_errors += 1
        obs.protocol_errors += 1
        dropped = self._parser.last_error_dropped
        self.bytes_dropped += dropped
        obs.protocol_dropped_bytes += dropped
        encode_reply_into(out, RespError(f"ERR protocol error: {exc}"))

    def feed_batch(self, data: bytes, out: bytearray) -> int:
        """Process raw client bytes, appending replies to ``out``.

        One copy into the parser buffer, then :meth:`pump`.
        """
        self._parser.feed(data)
        return self.pump(out)

    def feed(self, data: bytes) -> bytes:
        """Process raw client bytes; return the concatenated replies."""
        out = bytearray()
        self.feed_batch(data, out)
        return bytes(out)

    def feed_input(self, data: bytes) -> None:
        """Buffer raw client bytes without executing anything.

        Pair with :meth:`pop_reply` for command-at-a-time serving.
        """
        self._parser.feed(data)

    def pop_reply(self) -> bytes | None:
        """Parse and execute at most one buffered command.

        Returns that command's encoded reply, or ``None`` when no
        complete command is buffered. This is the classical
        thread-per-connection serving step — the caller takes its lock
        and writes the reply once *per command* — kept as the measured
        contrast to :meth:`pump`'s one-lock-per-batch hot path.
        """
        out = bytearray()
        parser = self._parser
        try:
            argv = parser.parse_one()
        except ProtocolError as exc:
            # the parser quarantined itself (fresh buffer, reusable);
            # account the drop like the batch path does
            self._record_error(exc, out)
            return bytes(out)
        if argv is None:
            return None
        if argv is NULL:  # a client sent a RESP null as a "command"
            argv = None
        if parser.command_fast or (
            type(argv) is list and all(type(a) is bytes for a in argv)
        ):
            if parser.command_fast:
                # command-at-a-time serving holds argv across lock
                # drops; zero-copy views must not leave this call
                _materialize_views(argv)
            self.commands_processed += 1
            start = perf_counter()
            encode_reply_into(out, dispatch(self.store, argv))
            if argv:
                self.obs.observe_command(
                    argv[0], perf_counter() - start, argv
                )
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def _run(self, argv: object) -> bytes:
        """Execute one already-parsed command vector (compat shim)."""
        out = bytearray()
        if type(argv) is list and all(type(a) is bytes for a in argv):
            self.commands_processed += 1
            start = perf_counter()
            encode_reply_into(out, dispatch(self.store, argv))
            if argv:
                self.obs.observe_command(
                    argv[0], perf_counter() - start, argv
                )
        else:
            encode_reply_into(out, _BAD_ARGV)
        return bytes(out)

    def __repr__(self) -> str:
        return (
            f"<KvServer store={self.store.name!r} "
            f"processed={self.commands_processed}>"
        )
