"""RESP2 (REdis Serialization Protocol) codec.

Implements the five RESP2 types — simple strings, errors, integers,
bulk strings, arrays — with an incremental parser suitable for a
byte-stream server. Clients encode commands as arrays of bulk strings,
exactly like real Redis clients.

Python mapping:

====================  =============================
RESP type             Python value
====================  =============================
simple string ``+``   :class:`SimpleString`
error ``-``           :class:`RespError`
integer ``:``         ``int``
bulk string ``$``     ``bytes`` (``None`` for null)
array ``*``           ``list`` (``None`` for null)
====================  =============================

The parser is built for a zero-copy serving hot path:

* The internal buffer is a reusable ``bytearray`` that sockets can
  ``recv_into`` directly (:meth:`RespParser.recv_view` /
  :meth:`RespParser.commit_recv`), so inbound bytes are copied exactly
  once — kernel to parser buffer — instead of kernel → recv ``bytes``
  → buffer.
* :meth:`RespParser.parse_pipeline` drains every complete command
  array in one tight loop (no per-command method dispatch), and in
  zero-copy mode hands large bulk payloads out as ``memoryview``
  slices of the buffer instead of ``bytes`` copies. **Ownership
  rule:** those views are valid only until the parser is next fed;
  whoever retains a payload (the store, the slowlog) must materialize
  it to ``bytes`` first. See DESIGN.md §7.
* A :class:`ProtocolError` *quarantines* the parser: the poisoned
  buffer is dropped (``last_error_dropped`` records how many bytes),
  and the parser is immediately safe to reuse — a client or server
  that keeps feeding it cannot misparse subsequent frames against
  stale mid-frame state.
"""

from __future__ import annotations

from typing import Any

from repro.kvstore.wire import (
    BULK_HEADERS,
    CRLF,
    EMPTY_ARRAY_REPLY,
    INT_REPLIES,
    NULL_BULK_REPLY,
    OK_REPLY,
)


class SimpleString(str):
    """A RESP simple string (``+OK\\r\\n``) — distinct from bulk strings."""


class RespError(Exception):
    """A RESP error reply (``-ERR ...\\r\\n``)."""

    def __init__(self, message: str) -> None:
        self.message = message
        super().__init__(message)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RespError) and other.message == self.message

    # defining __eq__ alone would set __hash__ = None and make error
    # replies unhashable (breaking set/dict-key dedup); keep them
    # hashable and consistent with __eq__
    def __hash__(self) -> int:
        return hash(("RespError", self.message))


class ReadOnlyReplicaError(RespError):
    """A ``-READONLY`` reply: the node is a replica refusing a write.

    Typed so clients can route around it (retry against the master,
    count it as a topology signal) instead of string-matching every
    :class:`RespError` they catch.
    """


def make_resp_error(message: str) -> RespError:
    """Build the most specific error type for a ``-`` reply line."""
    if message.startswith("READONLY"):
        return ReadOnlyReplicaError(message)
    return RespError(message)


class ProtocolError(ValueError):
    """Malformed RESP input on the wire."""


#: interned reply singletons: servers return these exact objects so
#: ``encode_reply_into`` can append pre-encoded bytes on an ``is`` check
OK = SimpleString("OK")
PONG = SimpleString("PONG")

_OK_WIRE = OK_REPLY
_PONG_WIRE = b"+PONG\r\n"


def _to_bulk(value: Any) -> bytes:
    """Coerce a command argument into bulk-string bytes."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode()
    if isinstance(value, (int, float)):
        return repr(value).encode() if isinstance(value, float) else str(value).encode()
    raise TypeError(f"cannot send {type(value).__name__} as a bulk string")


def encode_command(*args: Any) -> bytes:
    """Encode a client command as an array of bulk strings.

    >>> encode_command("SET", "k", "v")
    b'*3\\r\\n$3\\r\\nSET\\r\\n$1\\r\\nk\\r\\n$1\\r\\nv\\r\\n'
    """
    if not args:
        raise ValueError("empty command")
    out = [b"*%d\r\n" % len(args)]
    for arg in args:
        data = _to_bulk(arg)
        out.append(b"$%d\r\n" % len(data))
        out.append(data)
        out.append(CRLF)
    return b"".join(out)


def encode_reply_into(buf: bytearray, value: Any) -> None:
    """Append one encoded server reply to ``buf``.

    The serving hot path encodes straight into a connection's output
    buffer, so a pipelined batch produces one growing bytearray instead
    of one intermediate ``bytes`` object per reply. The most common
    replies — GET hits, ``+OK``, null bulks, small integers — hit
    interned pre-encoded fragments (no formatting, no ``.encode()``).
    """
    kind = type(value)
    if kind is bytes:  # GET hits: the most common reply
        size = len(value)
        buf += BULK_HEADERS[size] if size < 256 else b"$%d\r\n" % size
        buf += value
        buf += CRLF
    elif value is OK:
        buf += _OK_WIRE
    elif value is None:
        buf += NULL_BULK_REPLY
    elif kind is int:  # bool is not int here: type() is exact
        buf += (
            INT_REPLIES[value] if 0 <= value < 128 else b":%d\r\n" % value
        )
    elif kind is memoryview:
        size = len(value)
        buf += BULK_HEADERS[size] if size < 256 else b"$%d\r\n" % size
        buf += value
        buf += CRLF
    elif value is PONG:
        buf += _PONG_WIRE
    elif isinstance(value, SimpleString):
        buf += b"+"
        buf += value.encode()
        buf += CRLF
    elif isinstance(value, RespError):
        buf += b"-"
        buf += value.message.encode()
        buf += CRLF
    elif isinstance(value, bool):
        # Redis has no boolean in RESP2; map to integer like redis-py does.
        buf += b":%d\r\n" % int(value)
    elif isinstance(value, int):
        buf += b":%d\r\n" % value
    else:
        if isinstance(value, str):
            value = value.encode()
        if isinstance(value, bytes):
            size = len(value)
            buf += BULK_HEADERS[size] if size < 256 else b"$%d\r\n" % size
            buf += value
            buf += CRLF
        elif isinstance(value, (list, tuple)):
            if value:
                buf += b"*%d\r\n" % len(value)
                for item in value:
                    encode_reply_into(buf, item)
            else:
                buf += EMPTY_ARRAY_REPLY
        else:
            raise TypeError(f"cannot encode {type(value).__name__} as RESP")


def encode_reply(value: Any) -> bytes:
    """Encode a server reply."""
    buf = bytearray()
    encode_reply_into(buf, value)
    return bytes(buf)


#: :meth:`RespParser.parse_pipeline` status: buffer drained (any tail
#: is an incomplete frame waiting for more bytes)
PIPELINE_MORE = 0
#: :meth:`RespParser.parse_pipeline` status: the next frame is not a
#: plain command array — pop it with :meth:`RespParser.parse_one`
PIPELINE_FALLBACK = 1

#: past this consumed prefix, the next refill slides the live tail back
#: to the buffer start instead of growing the allocation forever
_COMPACT_AT = 16384
#: a drained buffer larger than this is released back to the allocator
_SHRINK_AT = 1 << 20


class RespParser:
    """Incremental RESP parser.

    Feed it raw bytes (:meth:`feed`, or zero-copy via
    :meth:`recv_view` + :meth:`commit_recv`); pop complete values with
    :meth:`parse_one`, drain everything with :meth:`parse_all`, or —
    on the serving hot path — drain whole pipelined command batches
    with :meth:`parse_pipeline`. Partial input is buffered until
    completed by a later feed.

    ``zero_copy_threshold`` enables handing bulk payloads of at least
    that many bytes out as ``memoryview`` slices (command-array
    elements at argv index >= 2 only, so command names and keys are
    always real ``bytes``). ``use_fast_path=False`` disables the
    command-array fast path entirely — a diagnostic/test seam that
    forces every frame through the generic recursive parser.
    """

    def __init__(
        self,
        *,
        zero_copy_threshold: int | None = None,
        use_fast_path: bool = True,
    ) -> None:
        self._buf = bytearray()
        self._pos = 0  # consumed prefix of the valid region
        self._len = 0  # valid bytes in ``_buf`` (the rest is slack)
        self.zero_copy_threshold = zero_copy_threshold
        self._use_fast_path = use_fast_path
        #: True iff the last :meth:`parse_one` value came from the
        #: command fast path, which certifies a list of only ``bytes``
        #: (plus, in zero-copy mode, ``memoryview``) elements — servers
        #: can then skip re-validating the argv
        self.command_fast = False
        #: lifetime count of memoryview payloads handed out
        self.views_created = 0
        #: lifetime count of :class:`ProtocolError` quarantines
        self.errors = 0
        #: total bytes discarded by quarantines (fed but never parsed,
        #: including the poisoned frame itself)
        self.dropped_bytes = 0
        #: bytes discarded by the most recent quarantine
        self.last_error_dropped = 0

    # -- input ---------------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Append ``data`` to the parse buffer (one copy)."""
        self._reset_if_drained()
        buf = self._buf
        # overwrite the slack tail (if any) and extend in one call
        buf[self._len:] = data
        self._len = len(buf)

    def recv_view(self, hint: int = 65536) -> memoryview:
        """A writable view of the buffer tail for ``sock.recv_into``.

        Reserves at least ``hint`` writable bytes past the valid
        region and returns a ``memoryview`` over them. The caller must
        release the view (it pins the buffer) and then report how many
        bytes landed via :meth:`commit_recv`. This is the zero-copy
        inbound path: the kernel writes socket bytes straight into the
        parse buffer.
        """
        self._reset_if_drained()
        buf = self._buf
        pos = self._pos
        if pos >= _COMPACT_AT:
            # slide the live tail to the front; same-length slice
            # assignment, so the buffer is never reallocated here
            live = self._len - pos
            buf[:live] = buf[pos:self._len]
            self._pos = 0
            self._len = live
        need = self._len + hint
        if len(buf) < need:
            buf.extend(bytes(need - len(buf)))
        return memoryview(buf)[self._len:]

    def commit_recv(self, nbytes: int) -> None:
        """Mark ``nbytes`` written through :meth:`recv_view` as valid."""
        self._len += nbytes

    def _reset_if_drained(self) -> None:
        if self._pos == self._len:
            self._pos = self._len = 0
            if len(self._buf) > _SHRINK_AT:
                # release a buffer inflated by one huge frame; a new
                # object, so stale views (a contract violation) can
                # never alias freshly received bytes
                self._buf = bytearray()

    @property
    def buffered_bytes(self) -> int:
        return self._len - self._pos

    # -- error containment ---------------------------------------------

    def _quarantine(self, frame_start: int) -> None:
        """Drop the poisoned stream so the parser is safe to reuse.

        Called on every :class:`ProtocolError` before it propagates.
        Everything from the failing frame's first byte to the end of
        the buffer is discarded — a parser left pointing mid-frame
        would misparse every subsequent feed. The buffer object is
        replaced, never truncated, so outstanding zero-copy views (if
        the caller violated the lifetime contract) cannot alias new
        input.
        """
        dropped = self._len - frame_start
        self.last_error_dropped = dropped
        self.dropped_bytes += dropped
        self.errors += 1
        self._buf = bytearray()
        self._pos = 0
        self._len = 0
        self.command_fast = False

    # -- parsing -------------------------------------------------------

    def parse_pipeline(self, out: list, limit: int | None = None) -> int:
        """Append every complete command array to ``out`` in one pass.

        The serving hot path: client commands are ``*N`` arrays of
        bulk strings, parsed here in one tight loop over the buffer —
        no per-command method dispatch, single-digit lengths decoded
        without ``int()``, and (in zero-copy mode) large payloads
        sliced as ``memoryview`` instead of copied.

        Returns :data:`PIPELINE_MORE` when the buffer is drained (a
        trailing partial frame stays buffered for the next feed) or
        :data:`PIPELINE_FALLBACK` when the next frame is anything but
        a plain command array (another type byte, a null array, or an
        array holding a non-bulk/null element) — pop that one frame
        with :meth:`parse_one`. Raises :class:`ProtocolError` (after
        quarantining) on malformed input; frames appended to ``out``
        before the poison remain valid.
        """
        end_of_data = self._len
        pos = frame_start = self._pos
        if not self._use_fast_path:
            return PIPELINE_FALLBACK if pos < end_of_data else PIPELINE_MORE
        buf = self._buf
        find = buf.find
        zc_min = self.zero_copy_threshold
        mv = None
        try:
            while pos < end_of_data:
                frame_start = pos
                if buf[pos] != 0x2A:  # not b"*": generic frame
                    return PIPELINE_FALLBACK
                # single-digit count with CRLF at the fixed offset is
                # virtually every client command — decoded with three
                # index reads, no find() and no int()
                if (
                    pos + 4 <= end_of_data
                    and buf[pos + 2] == 0x0D
                    and buf[pos + 3] == 0x0A
                ):
                    count = buf[pos + 1] - 0x30
                    if not 0 <= count <= 9:
                        if buf[pos + 1] == 0x2D:  # b"-": null/negative
                            return PIPELINE_FALLBACK
                        raise ProtocolError(
                            f"invalid integer "
                            f"{bytes(buf[pos + 1:pos + 2])!r}"
                        )
                    pos += 4
                else:
                    hdr_end = find(CRLF, pos + 1, end_of_data)
                    if hdr_end < 0:
                        break  # incomplete count line
                    if buf[pos + 1] == 0x2D:
                        return PIPELINE_FALLBACK
                    try:
                        count = int(bytes(buf[pos + 1:hdr_end]))
                    except ValueError:
                        raise ProtocolError(
                            f"invalid integer "
                            f"{bytes(buf[pos + 1:hdr_end])!r}"
                        ) from None
                    pos = hdr_end + 2
                argv: list[Any] = []
                append = argv.append
                complete = True
                for i in range(count):
                    if pos >= end_of_data:
                        complete = False
                        break
                    if buf[pos] != 0x24:  # not b"$": mixed array
                        return PIPELINE_FALLBACK
                    if (
                        pos + 4 <= end_of_data
                        and buf[pos + 2] == 0x0D
                        and buf[pos + 3] == 0x0A
                    ):
                        length = buf[pos + 1] - 0x30
                        if not 0 <= length <= 9:
                            if buf[pos + 1] == 0x2D:  # null bulk
                                return PIPELINE_FALLBACK
                            raise ProtocolError(
                                f"invalid integer "
                                f"{bytes(buf[pos + 1:pos + 2])!r}"
                            )
                        start = pos + 4
                    else:
                        hdr_end = find(CRLF, pos + 1, end_of_data)
                        if hdr_end < 0:
                            complete = False
                            break
                        if buf[pos + 1] == 0x2D:
                            # null bulk inside a command is not a valid
                            # argv — let the generic parser produce it
                            # (negative lengths < -1 error there too)
                            return PIPELINE_FALLBACK
                        try:
                            length = int(bytes(buf[pos + 1:hdr_end]))
                        except ValueError:
                            raise ProtocolError(
                                f"invalid integer "
                                f"{bytes(buf[pos + 1:hdr_end])!r}"
                            ) from None
                        start = hdr_end + 2
                    stop = start + length
                    if stop + 2 > end_of_data:
                        complete = False
                        break
                    if buf[stop] != 0x0D or buf[stop + 1] != 0x0A:
                        raise ProtocolError(
                            "bulk string not terminated by CRLF"
                        )
                    if zc_min is not None and length >= zc_min and i >= 2:
                        if mv is None:
                            mv = memoryview(buf)
                        append(mv[start:stop])
                        self.views_created += 1
                    else:
                        append(bytes(buf[start:stop]))
                    pos = stop + 2
                if not complete:
                    break  # leave ``_pos`` at this frame's start
                out.append(argv)
                self._pos = pos  # commit frame by frame
                if limit is not None and len(out) >= limit:
                    break
            return PIPELINE_MORE
        except ProtocolError:
            self._quarantine(frame_start)
            raise
        finally:
            if mv is not None:
                mv.release()

    def parse_one(self) -> Any | None:
        """Return the next complete value, or ``None`` if more bytes needed.

        ``None`` as a *parsed value* (null bulk/array) is disambiguated
        by :meth:`parse_all`, which callers should prefer; here a null
        parse returns the :data:`NULL` sentinel.
        """
        self.command_fast = False
        pos = self._pos
        if pos >= self._len:
            return None
        if self._use_fast_path and self._buf[pos] == 0x2A:  # b"*"
            frames: list[Any] = []
            status = self.parse_pipeline(frames, limit=1)
            if frames:
                self.command_fast = True
                return frames[0]
            if status == PIPELINE_MORE:
                return None
            # PIPELINE_FALLBACK: the generic parser takes over below
        start = self._pos
        try:
            value = self._parse_value()
        except _Incomplete:
            self._pos = start
            return None
        except ProtocolError:
            self._quarantine(start)
            raise
        self._reset_if_drained()
        return value

    def parse_all(self) -> list[Any]:
        """All complete values currently buffered (nulls become ``None``)."""
        values = []
        while True:
            value = self.parse_one()
            if value is None:
                break
            values.append(None if value is NULL else value)
        return values

    # -- internals ---------------------------------------------------------

    def _read_line(self) -> bytes:
        idx = self._buf.find(CRLF, self._pos, self._len)
        if idx < 0:
            raise _Incomplete
        line = bytes(self._buf[self._pos:idx])
        self._pos = idx + 2
        return line

    def _read_exact(self, count: int) -> bytes:
        end = self._pos + count
        if self._len < end + 2:
            raise _Incomplete
        data = bytes(self._buf[self._pos:end])
        if self._buf[end:end + 2] != CRLF:
            raise ProtocolError("bulk string not terminated by CRLF")
        self._pos = end + 2
        return data

    def _parse_value(self) -> Any:
        if self._pos >= self._len:
            raise _Incomplete
        kind = bytes(self._buf[self._pos:self._pos + 1])
        self._pos += 1
        if kind == b"+":
            return SimpleString(_decode_line(self._read_line()))
        if kind == b"-":
            return make_resp_error(_decode_line(self._read_line()))
        if kind == b":":
            return _parse_int(self._read_line())
        if kind == b"$":
            length = _parse_int(self._read_line())
            if length == -1:
                return NULL
            if length < 0:
                raise ProtocolError(f"invalid bulk length {length}")
            return self._read_exact(length)
        if kind == b"*":
            length = _parse_int(self._read_line())
            if length == -1:
                return NULL
            if length < 0:
                raise ProtocolError(f"invalid array length {length}")
            items = []
            for _ in range(length):
                item = self._parse_value()
                items.append(None if item is NULL else item)
            return items
        raise ProtocolError(f"unknown RESP type byte {kind!r}")


class _Incomplete(Exception):
    """Internal: not enough buffered bytes for a complete value."""


class _Null:
    """Sentinel distinguishing parsed RESP null from 'need more bytes'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RESP null>"


#: parsed RESP null ($-1 or *-1), as returned by :meth:`RespParser.parse_one`
NULL = _Null()


def _parse_int(line: bytes) -> int:
    try:
        return int(line)
    except ValueError:
        raise ProtocolError(f"invalid integer {line!r}") from None


def _decode_line(line: bytes) -> str:
    """Decode a simple-string/error line; garbage is a protocol error."""
    try:
        return line.decode()
    except UnicodeDecodeError:
        raise ProtocolError(f"non-UTF-8 line {line!r}") from None
