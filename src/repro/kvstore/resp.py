"""RESP2 (REdis Serialization Protocol) codec.

Implements the five RESP2 types — simple strings, errors, integers,
bulk strings, arrays — with an incremental parser suitable for a
byte-stream server. Clients encode commands as arrays of bulk strings,
exactly like real Redis clients.

Python mapping:

====================  =============================
RESP type             Python value
====================  =============================
simple string ``+``   :class:`SimpleString`
error ``-``           :class:`RespError`
integer ``:``         ``int``
bulk string ``$``     ``bytes`` (``None`` for null)
array ``*``           ``list`` (``None`` for null)
====================  =============================
"""

from __future__ import annotations

from typing import Any

CRLF = b"\r\n"


class SimpleString(str):
    """A RESP simple string (``+OK\\r\\n``) — distinct from bulk strings."""


class RespError(Exception):
    """A RESP error reply (``-ERR ...\\r\\n``)."""

    def __init__(self, message: str) -> None:
        self.message = message
        super().__init__(message)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RespError) and other.message == self.message

    def __hash__(self) -> int:
        return hash(("RespError", self.message))


class ProtocolError(ValueError):
    """Malformed RESP input on the wire."""


def _to_bulk(value: Any) -> bytes:
    """Coerce a command argument into bulk-string bytes."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode()
    if isinstance(value, (int, float)):
        return repr(value).encode() if isinstance(value, float) else str(value).encode()
    raise TypeError(f"cannot send {type(value).__name__} as a bulk string")


def encode_command(*args: Any) -> bytes:
    """Encode a client command as an array of bulk strings.

    >>> encode_command("SET", "k", "v")
    b'*3\\r\\n$3\\r\\nSET\\r\\n$1\\r\\nk\\r\\n$1\\r\\nv\\r\\n'
    """
    if not args:
        raise ValueError("empty command")
    out = [b"*%d\r\n" % len(args)]
    for arg in args:
        data = _to_bulk(arg)
        out.append(b"$%d\r\n" % len(data))
        out.append(data)
        out.append(CRLF)
    return b"".join(out)


def encode_reply_into(buf: bytearray, value: Any) -> None:
    """Append one encoded server reply to ``buf``.

    The serving hot path encodes straight into a connection's output
    buffer, so a pipelined batch produces one growing bytearray instead
    of one intermediate ``bytes`` object per reply.
    """
    if type(value) is bytes:  # GET hits: the most common reply
        buf += b"$%d\r\n" % len(value)
        buf += value
        buf += CRLF
    elif isinstance(value, SimpleString):
        buf += b"+"
        buf += value.encode()
        buf += CRLF
    elif isinstance(value, RespError):
        buf += b"-"
        buf += value.message.encode()
        buf += CRLF
    elif isinstance(value, bool):
        # Redis has no boolean in RESP2; map to integer like redis-py does.
        buf += b":%d\r\n" % int(value)
    elif isinstance(value, int):
        buf += b":%d\r\n" % value
    elif value is None:
        buf += b"$-1\r\n"
    else:
        if isinstance(value, str):
            value = value.encode()
        if isinstance(value, bytes):
            buf += b"$%d\r\n" % len(value)
            buf += value
            buf += CRLF
        elif isinstance(value, (list, tuple)):
            buf += b"*%d\r\n" % len(value)
            for item in value:
                encode_reply_into(buf, item)
        else:
            raise TypeError(f"cannot encode {type(value).__name__} as RESP")


def encode_reply(value: Any) -> bytes:
    """Encode a server reply."""
    buf = bytearray()
    encode_reply_into(buf, value)
    return bytes(buf)


class RespParser:
    """Incremental RESP parser.

    Feed it raw bytes; pop complete values with :meth:`parse_one` or
    drain everything available with :meth:`parse_all`. Partial input is
    buffered until completed by a later feed.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0
        #: True iff the last :meth:`parse_one` value came from the
        #: command fast path, which certifies a list of only ``bytes``
        #: elements — servers can then skip re-validating the argv
        self.command_fast = False

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def buffered_bytes(self) -> int:
        return len(self._buf) - self._pos

    def parse_one(self) -> Any | None:
        """Return the next complete value, or ``None`` if more bytes needed.

        ``None`` as a *parsed value* (null bulk/array) is disambiguated
        by :meth:`parse_all`, which callers should prefer; here a null
        parse returns the :data:`NULL` sentinel.
        """
        self.command_fast = False
        start = self._pos
        if start < len(self._buf) and self._buf[start] == 0x2A:  # b"*"
            value = self._parse_command_array()
            if value is not _FALLBACK:
                if type(value) is list:
                    self.command_fast = True
                return value
        try:
            value = self._parse_value()
        except _Incomplete:
            self._pos = start
            return None
        self._compact()
        return value

    def _parse_command_array(self) -> Any | None:
        """Fast path for ``*N`` arrays of bulk strings — every client
        command on the serving hot path has exactly this shape, so it
        is parsed in one tight loop over the buffer instead of one
        recursive ``_parse_value`` call (and its helper-method slices)
        per element. Returns :data:`_FALLBACK` when the array holds a
        non-bulk or null element (the generic parser takes over from
        the start, so fast-path output is certified all-``bytes``)
        and ``None`` when the buffer is incomplete; never moves ``_pos``
        unless a full array was consumed.
        """
        buf = self._buf
        pos = self._pos  # at b"*"
        buflen = len(buf)
        end = buf.find(CRLF, pos + 1)
        if end < 0:
            return None
        try:
            count = int(buf[pos + 1:end])
        except ValueError:
            raise ProtocolError(
                f"invalid integer {bytes(buf[pos + 1:end])!r}"
            ) from None
        if count < 0:
            if count == -1:
                self._pos = end + 2
                self._compact()
                return NULL
            raise ProtocolError(f"invalid array length {count}")
        pos = end + 2
        items: list[Any] = []
        append = items.append
        for __ in range(count):
            if pos >= buflen:
                return None
            if buf[pos] != 0x24:  # not b"$": mixed array, generic path
                return _FALLBACK
            end = buf.find(CRLF, pos + 1)
            if end < 0:
                return None
            try:
                length = int(buf[pos + 1:end])
            except ValueError:
                raise ProtocolError(
                    f"invalid integer {bytes(buf[pos + 1:end])!r}"
                ) from None
            if length < 0:
                if length == -1:
                    # null bulk inside a command: rare and not a valid
                    # argv — let the generic parser produce it so fast
                    # path output stays certified all-bytes
                    return _FALLBACK
                raise ProtocolError(f"invalid bulk length {length}")
            start = end + 2
            stop = start + length
            if buflen < stop + 2:
                return None
            if buf[stop:stop + 2] != CRLF:
                raise ProtocolError("bulk string not terminated by CRLF")
            append(bytes(buf[start:stop]))
            pos = stop + 2
        self._pos = pos
        self._compact()
        return items

    def parse_all(self) -> list[Any]:
        """All complete values currently buffered (nulls become ``None``)."""
        values = []
        while True:
            value = self.parse_one()
            if value is None:
                break
            values.append(None if value is NULL else value)
        return values

    # -- internals ---------------------------------------------------------

    def _compact(self) -> None:
        # Periodically discard consumed prefix so the buffer stays small.
        if self._pos > 4096:
            del self._buf[: self._pos]
            self._pos = 0

    def _read_line(self) -> bytes:
        idx = self._buf.find(CRLF, self._pos)
        if idx < 0:
            raise _Incomplete
        line = bytes(self._buf[self._pos:idx])
        self._pos = idx + 2
        return line

    def _read_exact(self, count: int) -> bytes:
        end = self._pos + count
        if len(self._buf) < end + 2:
            raise _Incomplete
        data = bytes(self._buf[self._pos:end])
        if bytes(self._buf[end:end + 2]) != CRLF:
            raise ProtocolError("bulk string not terminated by CRLF")
        self._pos = end + 2
        return data

    def _parse_value(self) -> Any:
        if self._pos >= len(self._buf):
            raise _Incomplete
        kind = self._buf[self._pos:self._pos + 1]
        self._pos += 1
        if kind == b"+":
            return SimpleString(_decode_line(self._read_line()))
        if kind == b"-":
            return RespError(_decode_line(self._read_line()))
        if kind == b":":
            return _parse_int(self._read_line())
        if kind == b"$":
            length = _parse_int(self._read_line())
            if length == -1:
                return NULL
            if length < 0:
                raise ProtocolError(f"invalid bulk length {length}")
            return self._read_exact(length)
        if kind == b"*":
            length = _parse_int(self._read_line())
            if length == -1:
                return NULL
            if length < 0:
                raise ProtocolError(f"invalid array length {length}")
            items = []
            for _ in range(length):
                item = self._parse_value()
                items.append(None if item is NULL else item)
            return items
        raise ProtocolError(f"unknown RESP type byte {kind!r}")


class _Incomplete(Exception):
    """Internal: not enough buffered bytes for a complete value."""


#: internal: the command-array fast path met a non-bulk element
_FALLBACK = object()


class _Null:
    """Sentinel distinguishing parsed RESP null from 'need more bytes'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RESP null>"


#: parsed RESP null ($-1 or *-1), as returned by :meth:`RespParser.parse_one`
NULL = _Null()


def _parse_int(line: bytes) -> int:
    try:
        return int(line)
    except ValueError:
        raise ProtocolError(f"invalid integer {line!r}") from None


def _decode_line(line: bytes) -> str:
    """Decode a simple-string/error line; garbage is a protocol error."""
    try:
        return line.decode()
    except UnicodeDecodeError:
        raise ProtocolError(f"non-UTF-8 line {line!r}") from None
