"""Command table: RESP argument vectors to store operations.

Each handler takes the store and the argument list (bytes, excluding the
command name) and returns a reply value for
:func:`repro.kvstore.resp.encode_reply`. Errors are returned as
:class:`~repro.kvstore.resp.RespError` values, never raised, matching
how a Redis server answers a bad command without dying.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import SoftMemoryDenied
from repro.kvstore.cluster.slots import SLOT_COUNT, key_hash_slot
from repro.kvstore.resp import OK, PONG, RespError, SimpleString
from repro.kvstore.store import DataStore, _glob_regex
from repro.kvstore.values import WrongTypeError

Handler = Callable[[DataStore, list[bytes]], Any]

# OK / PONG are the interned singletons from ``repro.kvstore.resp``:
# ``encode_reply_into`` recognizes those exact objects by identity and
# appends pre-encoded wire bytes, so handlers must return *these*, not
# fresh SimpleString("OK") instances


def _wrong_args(name: str) -> RespError:
    return RespError(f"ERR wrong number of arguments for '{name}' command")


def _parse_int(raw: bytes) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError("value is not an integer or out of range") from None


def cmd_ping(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return PONG
    if len(args) == 1:
        return args[0]
    return _wrong_args("ping")


def cmd_echo(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("echo")
    return args[0]


def cmd_set(store: DataStore, args: list[bytes]) -> Any:
    if len(args) == 2:  # plain SET key value: skip option scanning
        store.set(args[0], args[1])
        return OK
    if len(args) < 2:
        return _wrong_args("set")
    key, value, *opts = args
    ex: float | None = None
    keep_ttl = False
    i = 0
    while i < len(opts):
        opt = opts[i].upper()
        if opt == b"EX" and i + 1 < len(opts):
            ex = _parse_int(opts[i + 1])
            i += 2
        elif opt == b"PX" and i + 1 < len(opts):
            ex = _parse_int(opts[i + 1]) / 1000.0
            i += 2
        elif opt == b"KEEPTTL":
            keep_ttl = True
            i += 1
        else:
            return RespError("ERR syntax error")
    store.set(key, value, ex=ex, keep_ttl=keep_ttl)
    return OK


def cmd_setnx(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("setnx")
    key, value = args
    if store.exists(key):
        return 0
    store.set(key, value)
    return 1


def cmd_get(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("get")
    return store.get(args[0])


def cmd_getset(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("getset")
    old = store.get(args[0])
    store.set(args[0], args[1])
    return old


def cmd_mget(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return _wrong_args("mget")
    return [store.get(key) for key in args]


def cmd_mset(store: DataStore, args: list[bytes]) -> Any:
    if not args or len(args) % 2:
        return _wrong_args("mset")
    for i in range(0, len(args), 2):
        store.set(args[i], args[i + 1])
    return OK


def cmd_del(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return _wrong_args("del")
    return store.delete(*args)


def cmd_exists(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return _wrong_args("exists")
    return store.exists(*args)


def cmd_expire(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("expire")
    return int(store.expire(args[0], _parse_int(args[1])))


def cmd_ttl(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("ttl")
    return store.ttl(args[0])


def cmd_persist(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("persist")
    return int(store.persist(args[0]))


def cmd_incr(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("incr")
    return store.incrby(args[0], 1)


def cmd_decr(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("decr")
    return store.incrby(args[0], -1)


def cmd_incrby(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("incrby")
    return store.incrby(args[0], _parse_int(args[1]))


def cmd_decrby(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("decrby")
    return store.incrby(args[0], -_parse_int(args[1]))


def cmd_append(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("append")
    return store.append(args[0], args[1])


def cmd_strlen(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("strlen")
    return store.strlen(args[0])


def cmd_keys(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("keys")
    return store.keys(args[0])


def cmd_dbsize(store: DataStore, args: list[bytes]) -> Any:
    if args:
        return _wrong_args("dbsize")
    return store.dbsize()


def cmd_flushall(store: DataStore, args: list[bytes]) -> Any:
    store.flushall()
    return OK


_NO_PERSISTENCE = RespError(
    "ERR persistence is not configured (start the server with a data dir)"
)


def cmd_save(store: DataStore, args: list[bytes]) -> Any:
    """SAVE: synchronous checkpoint (snapshot + AOF rotation)."""
    if args:
        return _wrong_args("save")
    persist = store.persistence
    if persist is None:
        return _NO_PERSISTENCE
    if not persist.checkpoint(background=False):
        return RespError("ERR Background save already in progress")
    return OK


def cmd_bgsave(store: DataStore, args: list[bytes]) -> Any:
    """BGSAVE: materialize under the lock, serialize in a thread."""
    if args:
        return _wrong_args("bgsave")
    persist = store.persistence
    if persist is None:
        return _NO_PERSISTENCE
    if not persist.checkpoint(background=True):
        return RespError("ERR Background save already in progress")
    return SimpleString("Background saving started")


def cmd_bgrewriteaof(store: DataStore, args: list[bytes]) -> Any:
    """BGREWRITEAOF: a checkpoint *is* the rewrite — the new base
    snapshot carries exactly the live keys and the fresh incremental
    log starts empty, so the on-disk footprint is proportional to the
    keyspace again no matter how much history the old log held."""
    if args:
        return _wrong_args("bgrewriteaof")
    persist = store.persistence
    if persist is None:
        return _NO_PERSISTENCE
    if not persist.checkpoint(background=True):
        return RespError("ERR Background append only file rewriting "
                         "already in progress")
    return SimpleString("Background append only file rewriting started")


def cmd_lastsave(store: DataStore, args: list[bytes]) -> Any:
    if args:
        return _wrong_args("lastsave")
    persist = store.persistence
    if persist is None:
        return _NO_PERSISTENCE
    return persist.stats.rdb_last_save_time


def _fmt_metric(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


def _info_sections(store: DataStore) -> list[tuple[str, list[str]]]:
    """Build INFO as ``(section, lines)`` pairs (Redis section shape).

    The legacy flat ``store.info()`` keys lead the Keyspace section
    unchanged, so pre-section consumers that grep for ``keys:`` or
    ``reclaimed_keys:`` keep working; everything observability-shaped
    reads from the store's metrics registry snapshot.
    """
    obs = store.obs
    snapshot = obs.registry.snapshot()

    server = [
        f"name:{store.name}",
        f"commands_processed:{obs.commands}",
        f"protocol_errors:{obs.protocol_errors}",
        f"protocol_dropped_bytes:{obs.protocol_dropped_bytes}",
        f"slowlog_len:{len(obs.slowlog)}",
        f"slowlog_total:{obs.slowlog.total_logged}",
        f"slowlog_threshold_us:{obs.slowlog.threshold_us}",
    ]
    keyspace = [f"{k}:{v}" for k, v in store.info().items()]
    keyspace.append(f"oom_denials:{store.stats.oom_denials}")

    soft_prefixes = ("sma.", "smd.", "rpc.", "tier.")
    soft = [
        f"{name}:{_fmt_metric(value)}"
        for name, value in sorted(snapshot.items())
        if name.startswith(soft_prefixes)
    ]
    stats = [
        f"{name}:{_fmt_metric(value)}"
        for name, value in sorted(snapshot.items())
        if name.startswith(("store.", "server."))
    ]
    stats.append(f"gauge_errors:{obs.registry.gauge_errors}")
    latency: list[str] = []
    for name, snap in sorted(obs.command_stats().items()):
        latency.append(f"cmd.{name}.count:{snap.count}")
        latency.append(f"cmd.{name}.mean_us:{snap.mean * 1e6:.1f}")
        latency.append(f"cmd.{name}.p50_us:{snap.quantile(0.5) * 1e6:.1f}")
        latency.append(f"cmd.{name}.p99_us:{snap.quantile(0.99) * 1e6:.1f}")
        latency.append(f"cmd.{name}.max_us:{snap.vmax * 1e6:.1f}")
    persist = store.persistence
    if persist is None:
        persistence = ["enabled:0", "aof_enabled:0"]
    else:
        persistence = [
            "enabled:1",
            f"aof_enabled:{int(persist.aof_enabled)}",
            f"appendfsync:{persist.config.appendfsync}",
            f"dir:{persist.config.dir}",
            f"generation:{persist.generation}",
            f"aof_size:{persist.aof_size}",
            f"aof_pending_bytes:{persist.aof_pending_bytes}",
            f"rdb_bgsave_in_progress:{int(persist.bgsave_in_progress)}",
            f"rdb_last_bgsave_status:"
            f"{'err' if persist.last_bgsave_error else 'ok'}",
            f"fsync_errors:{persist.fsync_errors}",
            f"write_errors:{persist.write_errors}",
        ]
        persistence.extend(
            f"{name}:{value}"
            for name, value in persist.stats.as_dict().items()
        )
    repl = store.repl
    if repl is None:
        # a never-replicating server still answers the section, so lag
        # dashboards can poll any node with one parser
        replication = [
            "role:master",
            "connected_replicas:0",
            "master_repl_offset:0",
        ]
    else:
        replication = repl.info_lines()
    state = store.cluster
    if state is None:
        cluster = ["cluster_enabled:0"]
    else:
        node = state.myself
        cluster = [
            "cluster_enabled:1",
            f"cluster_shard_id:{state.shard_index}",
            f"cluster_node_id:{state.node_id}",
            f"cluster_known_nodes:{len(state.nodes)}",
            f"cluster_slots_owned:{node.slot_count}",
            f"cluster_slot_range:{node.start}-{node.end}",
            f"cluster_moved_replies:{state.moved_replies}",
            f"cluster_crossslot_replies:{state.crossslot_replies}",
        ]
    return [
        ("Server", server),
        ("Keyspace", keyspace),
        ("Persistence", persistence),
        ("Replication", replication),
        ("Cluster", cluster),
        ("SoftMemory", soft),
        ("Stats", stats),
        ("Latency", latency),
    ]


def cmd_info(store: DataStore, args: list[bytes]) -> Any:
    if len(args) > 1:
        return _wrong_args("info")
    sections = _info_sections(store)
    if args:
        want = args[0].lower()
        sections = [
            (name, lines)
            for name, lines in sections
            if name.lower().encode() == want
        ]
        if not sections:
            return b"\r\n"
    parts: list[str] = []
    for name, lines in sections:
        parts.append(f"# {name}")
        parts.extend(lines)
        parts.append("")
    return ("\r\n".join(parts) + "\r\n").encode()


def cmd_slowlog(store: DataStore, args: list[bytes]) -> Any:
    """SLOWLOG GET [count] | LEN | RESET | HELP (Redis reply shape)."""
    if not args:
        return _wrong_args("slowlog")
    sub = args[0].upper()
    slowlog = store.obs.slowlog
    if sub == b"GET":
        if len(args) > 2:
            return _wrong_args("slowlog get")
        count = _parse_int(args[1]) if len(args) == 2 else 10
        if count < 0:
            count = len(slowlog)
        return [
            [
                entry.entry_id,
                int(entry.timestamp),
                entry.duration_us,
                list(entry.argv),
            ]
            for entry in slowlog.entries(count)
        ]
    if sub == b"LEN":
        return len(slowlog)
    if sub == b"RESET":
        slowlog.reset()
        return OK
    if sub == b"HELP":
        return [
            b"SLOWLOG GET [count] -- return the <count> newest entries",
            b"SLOWLOG LEN -- number of retained entries",
            b"SLOWLOG RESET -- clear the log (total_logged survives)",
        ]
    return RespError(
        f"ERR unknown SLOWLOG subcommand "
        f"{sub.decode(errors='backslashreplace')!r}"
    )


#: CONFIG parameters we implement: slowlog and persistence knobs
_CONFIG_PARAMS = (
    b"appendfsync",
    b"appendonly",
    b"dir",
    b"slowlog-log-slower-than",
    b"slowlog-max-len",
)


def cmd_config(store: DataStore, args: list[bytes]) -> Any:
    """CONFIG GET/SET for the slowlog and persistence knobs."""
    if len(args) < 2:
        return _wrong_args("config")
    sub = args[0].upper()
    obs = store.obs
    persist = store.persistence
    if sub == b"GET":
        pattern = args[1].lower()
        flat: list[bytes] = []
        values: dict[bytes, Any] = {
            b"slowlog-log-slower-than": obs.slowlog_threshold_us,
            b"slowlog-max-len": obs.slowlog.max_len,
            b"appendonly": "no",
            b"appendfsync": "everysec",
            b"dir": "",
        }
        if persist is not None:
            values[b"appendonly"] = (
                "yes" if persist.config.appendonly else "no"
            )
            values[b"appendfsync"] = persist.config.appendfsync
            values[b"dir"] = persist.config.dir
        regex = _glob_regex(pattern)
        for param in _CONFIG_PARAMS:
            if regex is None or regex.match(param):
                flat.append(param)
                flat.append(str(values[param]).encode())
        return flat
    if sub == b"SET":
        if len(args) != 3:
            return _wrong_args("config set")
        param = args[1].lower()
        if param == b"slowlog-log-slower-than":
            obs.set_slowlog_threshold_us(_parse_int(args[2]))
            return OK
        if param == b"slowlog-max-len":
            value = _parse_int(args[2])
            if value < 1:
                return RespError(
                    "ERR CONFIG SET failed - argument must be positive"
                )
            obs.slowlog.set_max_len(value)
            return OK
        if param == b"appendonly":
            if persist is None:
                return _NO_PERSISTENCE
            flag = args[2].lower()
            if flag not in (b"yes", b"no"):
                return RespError(
                    "ERR CONFIG SET failed - argument must be 'yes' or 'no'"
                )
            persist.set_appendonly(flag == b"yes")
            return OK
        if param == b"appendfsync":
            if persist is None:
                return _NO_PERSISTENCE
            try:
                persist.set_appendfsync(args[2].lower().decode("ascii"))
            except (ValueError, UnicodeDecodeError):
                return RespError(
                    "ERR CONFIG SET failed - argument must be one of "
                    "'always', 'everysec', 'no'"
                )
            return OK
        if param == b"dir":
            # the data dir anchors recovery; moving it mid-flight would
            # orphan the generation chain, so it is fixed at startup
            return RespError(
                "ERR CONFIG SET dir is not supported at runtime - "
                "pass the data dir at startup"
            )
        return RespError(
            f"ERR Unknown option or number of arguments for CONFIG SET - "
            f"'{param.decode(errors='backslashreplace')}'"
        )
    return RespError(
        f"ERR unknown CONFIG subcommand "
        f"{sub.decode(errors='backslashreplace')!r}"
    )


def cmd_memory(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return _wrong_args("memory")
    sub = args[0].upper()
    if sub == b"USAGE":
        if len(args) != 2:
            return _wrong_args("memory usage")
        return store.memory_usage(args[1])
    if sub == b"STATS":
        info = store.info()
        flat: list[Any] = []
        for key, value in info.items():
            flat.append(key.encode())
            flat.append(value if isinstance(value, int) else str(value).encode())
        return flat
    if sub == b"PURGE":
        # voluntarily shed N pages worth of keyspace bytes through the
        # eviction policy (Listing 1's reclaim(sz); demote-before-drop
        # when the tier is on). Budget ledgers are untouched — only the
        # daemon revokes grants — so this is safe under a live SMD.
        # Crash harnesses and benchmarks use it to apply pressure
        # deterministically without a second process.
        if len(args) > 2:
            return _wrong_args("memory purge")
        pages = 1
        if len(args) == 2:
            try:
                pages = int(args[1])
            except ValueError:
                return RespError("ERR value is not an integer")
            if pages < 1:
                return RespError("ERR pages must be positive")
        from repro.util.units import PAGE_SIZE

        return store.keyspace.reclaim(pages * PAGE_SIZE)
    return RespError(f"ERR unknown MEMORY subcommand {sub.decode()!r}")


_CLUSTER_DISABLED = RespError(
    "ERR This instance has cluster support disabled"
)


def cmd_cluster(store: DataStore, args: list[bytes]) -> Any:
    """CLUSTER KEYSLOT/SLOTS/SHARDS/MYID/INFO (static-topology shapes).

    ``KEYSLOT`` answers on any server (the hash is topology-free);
    ``SLOTS``/``SHARDS`` answer the empty array on a standalone server
    so cluster clients can probe any node and degrade gracefully.
    """
    if not args:
        return _wrong_args("cluster")
    sub = args[0].upper()
    state = store.cluster
    if sub == b"KEYSLOT":
        if len(args) != 2:
            return _wrong_args("cluster keyslot")
        return key_hash_slot(args[1])
    if sub == b"SLOTS":
        if len(args) != 1:
            return _wrong_args("cluster slots")
        if state is None:
            return []
        return [
            [
                node.start,
                node.end,
                [node.host.encode(), node.port, node.node_id.encode()],
            ]
            for node in state.nodes
        ]
    if sub == b"SHARDS":
        if len(args) != 1:
            return _wrong_args("cluster shards")
        if state is None:
            return []
        return [
            [
                b"slots", [node.start, node.end],
                b"nodes", [[
                    b"id", node.node_id.encode(),
                    b"endpoint", node.host.encode(),
                    b"port", node.port,
                    b"role", b"master",
                    b"health", b"online",
                ]],
            ]
            for node in state.nodes
        ]
    if sub == b"MYID":
        if len(args) != 1:
            return _wrong_args("cluster myid")
        if state is None:
            return _CLUSTER_DISABLED
        return state.node_id.encode()
    if sub == b"INFO":
        if len(args) != 1:
            return _wrong_args("cluster info")
        if state is None:
            lines = ["cluster_enabled:0", "cluster_state:ok"]
        else:
            lines = [
                "cluster_enabled:1",
                "cluster_state:ok",
                f"cluster_slots_assigned:{SLOT_COUNT}",
                f"cluster_known_nodes:{len(state.nodes)}",
                f"cluster_size:{len(state.nodes)}",
            ]
        return ("\r\n".join(lines) + "\r\n").encode()
    return RespError(
        f"ERR unknown CLUSTER subcommand "
        f"{sub.decode(errors='backslashreplace')!r}"
    )


def cmd_type(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("type")
    name = store.type_of(args[0])
    return SimpleString((name or b"none").decode())


def cmd_getdel(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("getdel")
    return store.getdel(args[0])


def cmd_getrange(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("getrange")
    return store.getrange(args[0], _parse_int(args[1]), _parse_int(args[2]))


def cmd_setrange(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("setrange")
    return store.setrange(args[0], _parse_int(args[1]), args[2])


def cmd_setex(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("setex")
    store.set(args[0], args[2], ex=_parse_int(args[1]))
    return OK


def cmd_psetex(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("psetex")
    store.set(args[0], args[2], ex=_parse_int(args[1]) / 1000.0)
    return OK


def cmd_rename(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("rename")
    try:
        store.rename(args[0], args[1])
    except KeyError:
        return RespError("ERR no such key")
    return OK


def cmd_renamenx(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("renamenx")
    try:
        return int(store.renamenx(args[0], args[1]))
    except KeyError:
        return RespError("ERR no such key")


def cmd_randomkey(store: DataStore, args: list[bytes]) -> Any:
    if args:
        return _wrong_args("randomkey")
    return store.randomkey()


def cmd_scan(store: DataStore, args: list[bytes]) -> Any:
    if not args:
        return _wrong_args("scan")
    cursor = _parse_int(args[0])
    match: bytes | None = None
    count = 10
    i = 1
    while i < len(args):
        opt = args[i].upper()
        if opt == b"MATCH" and i + 1 < len(args):
            match = args[i + 1]
            i += 2
        elif opt == b"COUNT" and i + 1 < len(args):
            count = _parse_int(args[i + 1])
            i += 2
        else:
            return RespError("ERR syntax error")
    next_cursor, keys = store.scan(cursor, match=match, count=count)
    return [str(next_cursor).encode(), keys]


def cmd_expireat(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("expireat")
    return int(store.expireat(args[0], _parse_int(args[1])))


def cmd_pttl(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("pttl")
    return store.pttl(args[0])


def cmd_hset(store: DataStore, args: list[bytes]) -> Any:
    if len(args) < 3 or len(args) % 2 == 0:
        return _wrong_args("hset")
    mapping = dict(zip(args[1::2], args[2::2]))
    return store.hset(args[0], mapping)


def cmd_hget(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("hget")
    return store.hget(args[0], args[1])


def cmd_hdel(store: DataStore, args: list[bytes]) -> Any:
    if len(args) < 2:
        return _wrong_args("hdel")
    return store.hdel(args[0], *args[1:])


def cmd_hlen(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("hlen")
    return store.hlen(args[0])


def cmd_hkeys(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("hkeys")
    return store.hkeys(args[0])


def cmd_hvals(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("hvals")
    return store.hvals(args[0])


def cmd_hgetall(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("hgetall")
    flat: list[bytes] = []
    for fld, value in store.hgetall(args[0]).items():
        flat.append(fld)
        flat.append(value)
    return flat


def cmd_hexists(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("hexists")
    return int(store.hexists(args[0], args[1]))


def cmd_hincrby(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("hincrby")
    return store.hincrby(args[0], args[1], _parse_int(args[2]))


def cmd_lpush(store: DataStore, args: list[bytes]) -> Any:
    if len(args) < 2:
        return _wrong_args("lpush")
    return store.lpush(args[0], *args[1:])


def cmd_rpush(store: DataStore, args: list[bytes]) -> Any:
    if len(args) < 2:
        return _wrong_args("rpush")
    return store.rpush(args[0], *args[1:])


def cmd_lpop(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("lpop")
    return store.lpop(args[0])


def cmd_rpop(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("rpop")
    return store.rpop(args[0])


def cmd_llen(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 1:
        return _wrong_args("llen")
    return store.llen(args[0])


def cmd_lrange(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 3:
        return _wrong_args("lrange")
    return store.lrange(args[0], _parse_int(args[1]), _parse_int(args[2]))


def cmd_lindex(store: DataStore, args: list[bytes]) -> Any:
    if len(args) != 2:
        return _wrong_args("lindex")
    return store.lindex(args[0], _parse_int(args[1]))


# ----------------------------------------------------------------------
# replication
# ----------------------------------------------------------------------

#: commands a read-only replica refuses (exact Redis wording — typed
#: clients key off the READONLY prefix)
READONLY_MESSAGE = "READONLY You can't write against a read only replica."
_READONLY = RespError(READONLY_MESSAGE)

#: every command whose handler can mutate the keyspace; the replica
#: gate checks the upper-cased name against this set
_WRITE_NAMES = frozenset((
    b"SET", b"SETNX", b"GETSET", b"MSET", b"DEL", b"EXPIRE", b"EXPIREAT",
    b"PERSIST", b"INCR", b"DECR", b"INCRBY", b"DECRBY", b"APPEND",
    b"FLUSHALL", b"GETDEL", b"SETRANGE", b"SETEX", b"PSETEX", b"RENAME",
    b"RENAMENX", b"HSET", b"HDEL", b"HINCRBY", b"LPUSH", b"RPUSH",
    b"LPOP", b"RPOP",
))


def cmd_replicaof(store: DataStore, args: list[bytes]) -> Any:
    # role changes need the event loop's feed/link machinery; the
    # threaded server (and raw dispatch) cannot host them
    return RespError("ERR REPLICAOF requires the event-loop server")


def cmd_psync(store: DataStore, args: list[bytes]) -> Any:
    return RespError("ERR PSYNC requires the event-loop server")


def cmd_replconf(store: DataStore, args: list[bytes]) -> Any:
    return OK


def cmd_wait(store: DataStore, args: list[bytes]) -> Any:
    """WAIT fallback: the already-acked count, without blocking.

    The event-loop server intercepts WAIT and actually waits on the
    feed sockets; this handler serves the threaded server, where no
    feeds exist, and answers with what is known right now.
    """
    if len(args) != 2:
        return _wrong_args("wait")
    _parse_int(args[0])
    _parse_int(args[1])
    repl = store.repl
    if repl is None:
        return 0
    return repl.acked_by(repl.master_repl_offset)


COMMANDS: dict[bytes, Handler] = {
    b"PING": cmd_ping,
    b"ECHO": cmd_echo,
    b"SET": cmd_set,
    b"SETNX": cmd_setnx,
    b"GET": cmd_get,
    b"GETSET": cmd_getset,
    b"MGET": cmd_mget,
    b"MSET": cmd_mset,
    b"DEL": cmd_del,
    b"EXISTS": cmd_exists,
    b"EXPIRE": cmd_expire,
    b"TTL": cmd_ttl,
    b"PERSIST": cmd_persist,
    b"INCR": cmd_incr,
    b"DECR": cmd_decr,
    b"INCRBY": cmd_incrby,
    b"DECRBY": cmd_decrby,
    b"APPEND": cmd_append,
    b"STRLEN": cmd_strlen,
    b"KEYS": cmd_keys,
    b"DBSIZE": cmd_dbsize,
    b"FLUSHALL": cmd_flushall,
    b"SAVE": cmd_save,
    b"BGSAVE": cmd_bgsave,
    b"BGREWRITEAOF": cmd_bgrewriteaof,
    b"LASTSAVE": cmd_lastsave,
    b"INFO": cmd_info,
    b"SLOWLOG": cmd_slowlog,
    b"CONFIG": cmd_config,
    b"MEMORY": cmd_memory,
    b"CLUSTER": cmd_cluster,
    b"TYPE": cmd_type,
    b"GETDEL": cmd_getdel,
    b"GETRANGE": cmd_getrange,
    b"SETRANGE": cmd_setrange,
    b"SETEX": cmd_setex,
    b"PSETEX": cmd_psetex,
    b"RENAME": cmd_rename,
    b"RENAMENX": cmd_renamenx,
    b"RANDOMKEY": cmd_randomkey,
    b"SCAN": cmd_scan,
    b"EXPIREAT": cmd_expireat,
    b"PTTL": cmd_pttl,
    b"HSET": cmd_hset,
    b"HGET": cmd_hget,
    b"HDEL": cmd_hdel,
    b"HLEN": cmd_hlen,
    b"HKEYS": cmd_hkeys,
    b"HVALS": cmd_hvals,
    b"HGETALL": cmd_hgetall,
    b"HEXISTS": cmd_hexists,
    b"HINCRBY": cmd_hincrby,
    b"LPUSH": cmd_lpush,
    b"RPUSH": cmd_rpush,
    b"LPOP": cmd_lpop,
    b"RPOP": cmd_rpop,
    b"LLEN": cmd_llen,
    b"LRANGE": cmd_lrange,
    b"LINDEX": cmd_lindex,
    b"REPLICAOF": cmd_replicaof,
    b"PSYNC": cmd_psync,
    b"REPLCONF": cmd_replconf,
    b"WAIT": cmd_wait,
}


# Exact-bytes handler lookup: clients overwhelmingly send a command name
# in one fixed case, so resolving it through `.upper()` allocates a fresh
# bytes object per command. The cache is seeded with the canonical upper
# and lower spellings and learns other casings on first sight (bounded,
# and only for names that resolve — garbage can't grow it).
_HANDLERS: dict[bytes, Handler] = {}
for _name, _handler in COMMANDS.items():
    _HANDLERS[_name] = _handler
    _HANDLERS[_name.lower()] = _handler
_HANDLERS_MAX = 4 * len(_HANDLERS)


def lookup(name: bytes) -> Handler | None:
    """Resolve a command name (any casing) to its handler."""
    handler = _HANDLERS.get(name)
    if handler is None:
        handler = COMMANDS.get(name.upper())
        if handler is not None and len(_HANDLERS) < _HANDLERS_MAX:
            _HANDLERS[name] = handler
    return handler


_EMPTY_CMD = RespError("ERR empty command")


def dispatch(store: DataStore, argv: list[bytes]) -> Any:
    """Execute one parsed command vector against the store."""
    if not argv:
        return _EMPTY_CMD
    # cluster gate: a shard answers MOVED for keys outside its slot
    # range before any execution. Standalone stores pay one attribute
    # load and a None check per command — nothing else.
    if store.cluster is not None:
        redirect = store.cluster.check(argv)
        if redirect is not None:
            return redirect
    name = argv[0]
    # replica gate: a read-only replica refuses writes before any
    # execution. Non-replicating stores pay one attribute load and a
    # None check per command — the same bargain as the cluster gate.
    repl = store.repl
    if repl is not None and repl.role == "replica":
        if name.upper() in _WRITE_NAMES:
            return _READONLY
    try:
        # GET/SET dominate cache workloads; their common shapes skip
        # the handler indirection and argv[1:] slice entirely (still
        # inside the try so WRONGTYPE/OOM containment is identical)
        if name == b"GET":
            if len(argv) == 2:
                return store.get(argv[1])
        elif name == b"SET" and len(argv) == 3:
            store.set(argv[1], argv[2])
            return OK
        handler = _HANDLERS.get(name) or lookup(name)
        if handler is None:
            return RespError(
                f"ERR unknown command "
                f"'{name.decode(errors='backslashreplace')}'"
            )
        return handler(store, argv[1:])
    except WrongTypeError as exc:
        return RespError(str(exc))  # Redis sends WRONGTYPE without ERR
    except SoftMemoryDenied:
        # the SMA could not back the write (policy denial, or a local
        # degraded-mode denial); answer like Redis under maxmemory
        # instead of letting the exception kill the serving thread
        store.stats.oom_denials += 1
        return RespError(
            "OOM command not allowed when soft memory cannot be allocated"
        )
    except ValueError as exc:
        return RespError(f"ERR {exc}")
    except TypeError as exc:
        return RespError(f"ERR {exc}")
