"""repro — reproduction of *Towards Increased Datacenter Efficiency with
Soft Memory* (Frisella, Loayza Sanchez, Schwarzkopf; HotOS '23).

Soft memory makes allocations revocable under memory pressure: instead
of killing processes or failing ``malloc``, a machine-wide daemon moves
pages from opted-in data structures (whose contents can be dropped) to
whoever needs them.

Quickstart::

    from repro import SoftMemoryAllocator, SoftMemoryDaemon, SoftLinkedList

    smd = SoftMemoryDaemon(soft_capacity_pages=5120)   # 20 MiB machine
    sma = SoftMemoryAllocator(name="cache-service")
    smd.register(sma, traditional_pages=256)
    cache = SoftLinkedList(sma, element_size=2048)
    cache.append("hello")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced result.
"""

from repro.core import (
    DerefScope,
    LockedSoftMemoryAllocator,
    ReclaimedMemoryError,
    ReclamationStats,
    SdsContext,
    SoftMemoryAllocator,
    SoftMemoryDenied,
    SoftMemoryError,
    SoftPtr,
    ReferenceQueue,
    SoftReference,
)
from repro.daemon import SmdConfig, SoftMemoryDaemon
from repro.mem import OutOfMemoryError, PhysicalMemory, SystemAllocator
from repro.sds import (
    Sache,
    SoftArray,
    SoftBuffer,
    SoftDataStructure,
    SoftHashTable,
    SoftLinkedList,
    SoftLRUCache,
    SoftQueue,
)
from repro.util import KIB, MIB, PAGE_SIZE

__version__ = "0.1.0"

__all__ = [
    "DerefScope",
    "KIB",
    "LockedSoftMemoryAllocator",
    "MIB",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "PhysicalMemory",
    "ReclaimedMemoryError",
    "ReclamationStats",
    "ReferenceQueue",
    "Sache",
    "SdsContext",
    "SmdConfig",
    "SoftArray",
    "SoftBuffer",
    "SoftDataStructure",
    "SoftHashTable",
    "SoftLRUCache",
    "SoftLinkedList",
    "SoftMemoryAllocator",
    "SoftMemoryDaemon",
    "SoftMemoryDenied",
    "SoftMemoryError",
    "SoftPtr",
    "SoftQueue",
    "SoftReference",
    "SystemAllocator",
    "__version__",
]
