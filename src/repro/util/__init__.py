"""Shared utilities: size units, statistics helpers, and event logging.

These are deliberately dependency-free so every other subpackage can use
them without import cycles.
"""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    PAGE_SIZE,
    bytes_to_pages,
    format_bytes,
    pages_to_bytes,
    parse_size,
)
from repro.util.stats import Summary, percentile, summarize
from repro.util.eventlog import Event, EventLog
from repro.util.tracefile import dump_events, load_events

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "bytes_to_pages",
    "pages_to_bytes",
    "format_bytes",
    "parse_size",
    "Summary",
    "percentile",
    "summarize",
    "Event",
    "EventLog",
    "dump_events",
    "load_events",
]
