"""Byte-size units and page arithmetic.

The paper manages memory at 4 KiB page granularity (a SoftLinkedList with
2 KiB elements fits two elements per page, and the 12 KiB reclamation
demand in section 3.1 is "roughly three pages"). Everything downstream
uses :data:`PAGE_SIZE` from here so the page size is a single knob.
"""

from __future__ import annotations

import re

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one simulated OS page in bytes (matches x86-64 base pages).
PAGE_SIZE = 4 * KIB

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[kmg]?i?b?|pages?)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "page": PAGE_SIZE,
    "pages": PAGE_SIZE,
}


def parse_size(text: str | int) -> int:
    """Parse a human size string ("10 MiB", "4k", "3 pages") into bytes.

    Integers pass through unchanged, so callers can accept either form.

    >>> parse_size("2 KiB")
    2048
    >>> parse_size("3 pages")
    12288
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    number = float(match.group("num"))
    unit = (match.group("unit") or "").lower()
    try:
        factor = _UNIT_FACTORS[unit]
    except KeyError:
        raise ValueError(f"unknown size unit in {text!r}") from None
    result = number * factor
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def bytes_to_pages(size: int) -> int:
    """Number of whole pages needed to hold ``size`` bytes (round up)."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return -(-size // PAGE_SIZE)


def pages_to_bytes(pages: int) -> int:
    """Total bytes spanned by ``pages`` whole pages."""
    if pages < 0:
        raise ValueError(f"page count must be non-negative, got {pages}")
    return pages * PAGE_SIZE


def format_bytes(size: int) -> str:
    """Render a byte count the way the paper does (KiB / MiB / GiB).

    >>> format_bytes(10 * MIB)
    '10.0 MiB'
    >>> format_bytes(512)
    '512 B'
    """
    if size < 0:
        return "-" + format_bytes(-size)
    if size < KIB:
        return f"{size} B"
    for factor, name in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if size >= factor:
            return f"{size / factor:.1f} {name}"
    raise AssertionError("unreachable")
