"""Structured event log used to build timelines (Figure 2 style plots).

Every interesting state change in the simulators — a soft memory request,
a reclamation demand, a page transfer — is appended as an :class:`Event`.
Benchmarks then turn the log into the time series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class Event:
    """One timestamped record.

    ``time`` is in simulated seconds (or wall-clock seconds when the caller
    measures for real); ``kind`` is a short machine-readable tag such as
    ``"reclaim.start"``; ``detail`` carries free-form fields.
    """

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.4f}s] {self.kind} {parts}".rstrip()


class EventLog:
    """Append-only list of events with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []
        #: subscriber callbacks that raised inside :meth:`record`
        self.subscriber_errors = 0

    def record(self, time: float, kind: str, **detail: Any) -> Event:
        """Append an event and notify subscribers.

        A raising subscriber is contained and counted: the event is
        already appended, and every *later* subscriber is still
        notified — one broken observer must not blind the others or
        abort the state change being recorded.
        """
        event = Event(time=time, kind=kind, detail=detail)
        self._events.append(event)
        for callback in self._subscribers:
            try:
                callback(event)
            except Exception:
                self.subscriber_errors += 1
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove a subscriber added with :meth:`subscribe`."""
        self._subscribers.remove(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: str) -> list[Event]:
        """All events whose kind equals or starts with ``kind``.

        ``of_kind("reclaim")`` matches ``reclaim.start`` and
        ``reclaim.done`` but not ``request``.
        """
        return [
            e
            for e in self._events
            if e.kind == kind or e.kind.startswith(kind + ".")
        ]

    def first(self, kind: str) -> Event | None:
        """Earliest event of ``kind`` (prefix match), or ``None``."""
        matches = self.of_kind(kind)
        return matches[0] if matches else None

    def last(self, kind: str) -> Event | None:
        """Latest event of ``kind`` (prefix match), or ``None``."""
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def series(self, kind: str, field_name: str) -> list[tuple[float, Any]]:
        """(time, detail[field_name]) pairs for events of ``kind``."""
        return [
            (e.time, e.detail[field_name])
            for e in self.of_kind(kind)
            if field_name in e.detail
        ]

    def clear(self) -> None:
        self._events.clear()
