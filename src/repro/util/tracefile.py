"""Event-log persistence: save and reload experiment traces.

Timelines (Figure 2 and friends) are built from
:class:`~repro.util.eventlog.EventLog` records. This module serializes
a log to JSON-lines so an experiment run can be archived, diffed
between versions, or re-analyzed without re-running the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.util.eventlog import Event, EventLog


def dump_events(log: Iterable[Event], path: str | Path) -> int:
    """Write events as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in log:
            fh.write(json.dumps(
                {"t": event.time, "kind": event.kind, **event.detail},
                separators=(",", ":"),
                default=str,  # process lists, enums, etc.
            ))
            fh.write("\n")
            count += 1
    return count


def load_events(path: str | Path) -> EventLog:
    """Rebuild an :class:`EventLog` from a JSON-lines trace file."""
    log = EventLog()
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                time = record.pop("t")
                kind = record.pop("kind")
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed trace line"
                ) from exc
            log.record(float(time), str(kind), **record)
    return log
