"""Tiny statistics helpers used by benchmarks and the simulators.

Kept dependency-free (no numpy import) so the core library works anywhere;
benchmarks that want heavier analysis import numpy themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``values`` (``pct`` in [0, 100]).

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    frac = rank - lower
    lo, hi = ordered[lower], ordered[upper]
    # The ``lo + frac * (hi - lo)`` form is monotone in ``frac`` under
    # rounding (unlike ``lo*(1-frac) + hi*frac``), and clamping to the
    # bracketing pair — not the whole sample — keeps ulp-scale rounding
    # from ever making the result non-monotone in ``pct``.
    value = lo + frac * (hi - lo)
    return float(min(max(value, lo), hi))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} sd={self.stdev:.4g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} "
            f"p99={self.p99:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over ``values``."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("summarize of empty sequence")
    mean = sum(data) / len(data)
    if len(data) > 1:
        var = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    else:
        var = 0.0
    return Summary(
        count=len(data),
        mean=mean,
        stdev=math.sqrt(var),
        minimum=min(data),
        p50=percentile(data, 50),
        p99=percentile(data, 99),
        maximum=max(data),
    )
