"""Replayable trace files: record an operation stream, replay it.

Format — one human-greppable header line, then RESP all the way down::

    #repro-loadgen-trace v1 {"spec": {...}, "seed": 7, "batches": N,
                             "ops": M}\\n
    *<batch-len>\\r\\n<command array>...<command array>   (N times)

Each batch is a RESP array whose elements are the batch's command
arrays (arrays of bulk strings) — the exact bytes of every operation
travel in the file, so replay is *byte-identical* by construction:
``record → replay → re-record`` reproduces the original file down to
the last byte (asserted by the property tests). The payload after the
header parses with the repo's own :class:`RespParser`; no second codec
to drift.

Batch boundaries are part of the trace (pipeline depth shapes server
behavior — group commit, batching, slow-client limits — so a faithful
replay must reproduce them, not re-draw them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.kvstore.resp import RespParser, encode_command
from repro.loadgen.engine import Op, OperationStream
from repro.loadgen.spec import WorkloadSpec

__all__ = ["TraceError", "read_trace", "record_trace", "replay_batches"]

_MAGIC = b"#repro-loadgen-trace v1 "


class TraceError(ValueError):
    """The file is not a valid loadgen trace."""


def record_trace(
    path: str | Path,
    stream: OperationStream,
    *,
    batches: int,
) -> dict:
    """Record ``batches`` pipeline batches of ``stream`` to ``path``.

    Returns the header metadata that was written.
    """
    chunks: list[bytes] = []
    ops = 0
    source = stream.batches()
    for _ in range(batches):
        batch = next(source)
        chunks.append(b"*%d\r\n" % len(batch))
        for op in batch:
            chunks.append(encode_command(*op))
        ops += len(batch)
    meta = {
        "spec": stream.spec.to_dict(),
        "seed": stream.seed,
        "batches": batches,
        "ops": ops,
    }
    header = _MAGIC + json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode() + b"\n"
    with open(path, "wb") as fh:
        fh.write(header)
        for chunk in chunks:
            fh.write(chunk)
    return meta


def _normalize(frame: object) -> Op:
    """One parsed command array → a tuple of bytes argv."""
    if not isinstance(frame, list) or not frame:
        raise TraceError(f"trace batch element is not a command: {frame!r}")
    argv: list[bytes] = []
    for item in frame:
        if isinstance(item, memoryview):
            item = bytes(item)
        if not isinstance(item, bytes):
            raise TraceError(f"non-bulk argument in trace: {item!r}")
        argv.append(item)
    return tuple(argv)


def read_trace(path: str | Path) -> tuple[dict, list[list[Op]]]:
    """Load a trace file → ``(header_meta, batches)``.

    The whole file is validated on load: the header must carry the
    magic, the payload must parse as exactly ``meta["batches"]``
    batches holding ``meta["ops"]`` operations with no trailing bytes.
    """
    raw = Path(path).read_bytes()
    newline = raw.find(b"\n")
    if newline < 0 or not raw.startswith(_MAGIC):
        raise TraceError(f"{path}: missing loadgen trace header")
    try:
        meta = json.loads(raw[len(_MAGIC):newline])
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: malformed trace header") from exc
    parser = RespParser()
    parser.feed(raw[newline + 1:])
    frames = parser.parse_all()
    if parser.buffered_bytes:
        raise TraceError(
            f"{path}: {parser.buffered_bytes} trailing bytes after the "
            f"last complete batch"
        )
    batches: list[list[Op]] = []
    ops = 0
    for frame in frames:
        if not isinstance(frame, list):
            raise TraceError(f"{path}: batch frame is not an array")
        batch = [_normalize(command) for command in frame]
        ops += len(batch)
        batches.append(batch)
    if len(batches) != meta.get("batches") or ops != meta.get("ops"):
        raise TraceError(
            f"{path}: header promises {meta.get('batches')} batches / "
            f"{meta.get('ops')} ops, file holds {len(batches)} / {ops}"
        )
    return meta, batches


def replay_batches(path: str | Path) -> Iterator[list[Op]]:
    """The trace's batches, in recorded order (driver-compatible)."""
    __, batches = read_trace(path)
    yield from batches


def reencode(batches: Iterable[list[Op]]) -> bytes:
    """The RESP payload bytes for ``batches`` (sans header).

    ``read_trace`` + ``reencode`` is the round-trip identity the tests
    pin: re-encoding a loaded trace reproduces the file payload
    exactly.
    """
    chunks: list[bytes] = []
    for batch in batches:
        chunks.append(b"*%d\r\n" % len(batch))
        for op in batch:
            chunks.append(encode_command(*op))
    return b"".join(chunks)


def trace_spec(meta: dict) -> WorkloadSpec:
    """Rebuild the recorded :class:`WorkloadSpec` from a trace header."""
    return WorkloadSpec.from_dict(meta["spec"])
