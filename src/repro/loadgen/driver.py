"""Drive an operation stream against a live server and measure it.

Works with every client in the repo that speaks the pipelining
contract — :class:`~repro.kvstore.client.KvClient` (in-process),
:class:`~repro.kvstore.tcp.TcpKvClient` (one socket),
:class:`~repro.kvstore.cluster.ClusterKvClient` (slot-routed) — because
all three expose ``execute_pipeline(*commands)`` returning replies in
command order with error replies in place.

The driver never raises on an error *reply*: under soft-memory
pressure OOM denials are the phenomenon being measured, not a test
failure. Errors are classified by prefix (``OOM`` / ``MOVED`` /
``READONLY`` / ``CROSSSLOT`` / other) and tallied in the report.

Read scaling: pass ``replica_client`` and a ``read_from_replica``
fraction to route that share of read ops at a replica. Routing is a
deterministic fractional accumulator (no RNG — the same stream always
routes the same way), and replica reads that come back empty are
*counted* as stale, never raised: replication lag is a phenomenon the
report surfaces, not a driver failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol

from repro.kvstore.resp import RespError
from repro.loadgen.engine import Op

__all__ = ["DriverReport", "PipelinedClient", "drive"]


class PipelinedClient(Protocol):
    def execute_pipeline(self, *commands: tuple) -> list[object]: ...


#: verbs safe to serve from a read-only replica
_READ_VERBS = frozenset((
    b"GET", b"MGET", b"EXISTS", b"TTL", b"PTTL", b"STRLEN",
    b"HGET", b"HGETALL", b"HLEN", b"LRANGE", b"LLEN", b"LINDEX",
))


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class DriverReport:
    """What one driven run did and how fast it went."""

    ops: int = 0
    batches: int = 0
    elapsed: float = 0.0
    errors: int = 0
    oom_denials: int = 0
    moved_errors: int = 0
    crossslot_errors: int = 0
    readonly_errors: int = 0
    other_errors: int = 0
    #: read ops routed to the replica client
    replica_reads: int = 0
    #: replica-routed reads that returned nothing — an upper bound on
    #: stale reads (the key may be mid-replication or truly absent)
    replica_stale_reads: int = 0
    verbs: dict[str, int] = field(default_factory=dict)
    batch_latencies: list[float] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def batch_p50_ms(self) -> float:
        return 1000 * _percentile(self.batch_latencies, 0.50)

    @property
    def batch_p99_ms(self) -> float:
        return 1000 * _percentile(self.batch_latencies, 0.99)

    def note_reply(self, reply: object) -> None:
        if not isinstance(reply, RespError):
            return
        self.errors += 1
        message = reply.message
        if message.startswith("OOM"):
            self.oom_denials += 1
        elif message.startswith("MOVED"):
            self.moved_errors += 1
        elif message.startswith("CROSSSLOT"):
            self.crossslot_errors += 1
        elif message.startswith("READONLY"):
            # a write landed on a replica: topology skew, not load
            self.readonly_errors += 1
        else:
            self.other_errors += 1

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "batches": self.batches,
            "elapsed_sec": round(self.elapsed, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "batch_p50_ms": round(self.batch_p50_ms, 4),
            "batch_p99_ms": round(self.batch_p99_ms, 4),
            "errors": self.errors,
            "oom_denials": self.oom_denials,
            "moved_errors": self.moved_errors,
            "crossslot_errors": self.crossslot_errors,
            "readonly_errors": self.readonly_errors,
            "other_errors": self.other_errors,
            "replica_reads": self.replica_reads,
            "replica_stale_reads": self.replica_stale_reads,
            "verbs": dict(sorted(self.verbs.items())),
        }


class _ReplicaRouter:
    """Deterministic fractional-accumulator read routing.

    Every read op adds ``fraction``; each time the accumulator crosses
    1 the op goes to the replica. A 0.25 fraction routes exactly every
    fourth read — same stream, same routing, run after run.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"read_from_replica must be in [0,1]: {fraction}")
        self.fraction = fraction
        self._acc = 0.0

    def takes(self, op: Op) -> bool:
        if op[0].upper() not in _READ_VERBS:
            return False
        self._acc += self.fraction
        if self._acc >= 1.0:
            self._acc -= 1.0
            return True
        return False


def drive(
    client: PipelinedClient,
    batches: Iterable[list[Op]] | Iterator[list[Op]],
    *,
    max_ops: int | None = None,
    duration: float | None = None,
    report: DriverReport | None = None,
    replica_client: PipelinedClient | None = None,
    read_from_replica: float = 0.0,
) -> DriverReport:
    """Send batches until ``max_ops`` ops or ``duration`` seconds.

    At least one of the bounds must be given (the engine's streams are
    endless), and ``max_ops`` bounds *this call's* ops — accumulating
    into a shared ``report`` (e.g. prefill + measured run in one tally)
    does not eat a later call's budget.
    Replies are counted, classified, and *verified in number*: a
    reply-count mismatch means client/server desync and does raise.

    With ``replica_client`` set, ``read_from_replica`` of the read ops
    are split out of each batch and pipelined at the replica; their
    empty replies count as ``replica_stale_reads`` in the report.
    """
    if max_ops is None and duration is None:
        raise ValueError("drive() needs max_ops and/or duration")
    if replica_client is None and read_from_replica:
        raise ValueError("read_from_replica needs a replica_client")
    router = (
        _ReplicaRouter(read_from_replica)
        if replica_client is not None
        else None
    )
    rep = report if report is not None else DriverReport()
    ops_before = rep.ops
    started = time.perf_counter()
    deadline = started + duration if duration is not None else None
    for batch in batches:
        if router is not None:
            primary_ops: list[Op] = []
            replica_ops: list[Op] = []
            routing = []  # per-op: which reply stream it came from
            for op in batch:
                if router.takes(op):
                    routing.append(True)
                    replica_ops.append(op)
                else:
                    routing.append(False)
                    primary_ops.append(op)
        else:
            primary_ops, replica_ops, routing = batch, [], None
        t0 = time.perf_counter()
        primary_replies = (
            client.execute_pipeline(*primary_ops) if primary_ops else []
        )
        replica_replies = (
            replica_client.execute_pipeline(*replica_ops)
            if replica_ops
            else []
        )
        t1 = time.perf_counter()
        if len(primary_replies) != len(primary_ops) or len(
            replica_replies
        ) != len(replica_ops):
            raise RuntimeError(
                f"desync: {len(batch)} commands, "
                f"{len(primary_replies) + len(replica_replies)} replies"
            )
        if routing is None:
            replies: list[object] = primary_replies
        else:
            primary_it = iter(primary_replies)
            replica_it = iter(replica_replies)
            replies = [
                next(replica_it) if from_replica else next(primary_it)
                for from_replica in routing
            ]
        rep.batches += 1
        rep.ops += len(batch)
        rep.batch_latencies.append(t1 - t0)
        for op, reply, on_replica in zip(
            batch, replies, routing or (False,) * len(batch)
        ):
            verb = op[0].decode().lower()
            rep.verbs[verb] = rep.verbs.get(verb, 0) + 1
            rep.note_reply(reply)
            if on_replica:
                rep.replica_reads += 1
                if reply is None:
                    rep.replica_stale_reads += 1
        if max_ops is not None and rep.ops - ops_before >= max_ops:
            break
        if deadline is not None and t1 >= deadline:
            break
    rep.elapsed += time.perf_counter() - started
    return rep
