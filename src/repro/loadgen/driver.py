"""Drive an operation stream against a live server and measure it.

Works with every client in the repo that speaks the pipelining
contract — :class:`~repro.kvstore.client.KvClient` (in-process),
:class:`~repro.kvstore.tcp.TcpKvClient` (one socket),
:class:`~repro.kvstore.cluster.ClusterKvClient` (slot-routed) — because
all three expose ``execute_pipeline(*commands)`` returning replies in
command order with error replies in place.

The driver never raises on an error *reply*: under soft-memory
pressure OOM denials are the phenomenon being measured, not a test
failure. Errors are classified by prefix (``OOM`` / ``MOVED`` /
``CROSSSLOT`` / other) and tallied in the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol

from repro.kvstore.resp import RespError
from repro.loadgen.engine import Op

__all__ = ["DriverReport", "PipelinedClient", "drive"]


class PipelinedClient(Protocol):
    def execute_pipeline(self, *commands: tuple) -> list[object]: ...


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class DriverReport:
    """What one driven run did and how fast it went."""

    ops: int = 0
    batches: int = 0
    elapsed: float = 0.0
    errors: int = 0
    oom_denials: int = 0
    moved_errors: int = 0
    crossslot_errors: int = 0
    other_errors: int = 0
    verbs: dict[str, int] = field(default_factory=dict)
    batch_latencies: list[float] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def batch_p50_ms(self) -> float:
        return 1000 * _percentile(self.batch_latencies, 0.50)

    @property
    def batch_p99_ms(self) -> float:
        return 1000 * _percentile(self.batch_latencies, 0.99)

    def note_reply(self, reply: object) -> None:
        if not isinstance(reply, RespError):
            return
        self.errors += 1
        message = reply.message
        if message.startswith("OOM"):
            self.oom_denials += 1
        elif message.startswith("MOVED"):
            self.moved_errors += 1
        elif message.startswith("CROSSSLOT"):
            self.crossslot_errors += 1
        else:
            self.other_errors += 1

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "batches": self.batches,
            "elapsed_sec": round(self.elapsed, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "batch_p50_ms": round(self.batch_p50_ms, 4),
            "batch_p99_ms": round(self.batch_p99_ms, 4),
            "errors": self.errors,
            "oom_denials": self.oom_denials,
            "moved_errors": self.moved_errors,
            "crossslot_errors": self.crossslot_errors,
            "other_errors": self.other_errors,
            "verbs": dict(sorted(self.verbs.items())),
        }


def drive(
    client: PipelinedClient,
    batches: Iterable[list[Op]] | Iterator[list[Op]],
    *,
    max_ops: int | None = None,
    duration: float | None = None,
    report: DriverReport | None = None,
) -> DriverReport:
    """Send batches until ``max_ops`` ops or ``duration`` seconds.

    At least one of the bounds must be given (the engine's streams are
    endless), and ``max_ops`` bounds *this call's* ops — accumulating
    into a shared ``report`` (e.g. prefill + measured run in one tally)
    does not eat a later call's budget.
    Replies are counted, classified, and *verified in number*: a
    reply-count mismatch means client/server desync and does raise.
    """
    if max_ops is None and duration is None:
        raise ValueError("drive() needs max_ops and/or duration")
    rep = report if report is not None else DriverReport()
    ops_before = rep.ops
    started = time.perf_counter()
    deadline = started + duration if duration is not None else None
    for batch in batches:
        t0 = time.perf_counter()
        replies = client.execute_pipeline(*batch)
        t1 = time.perf_counter()
        if len(replies) != len(batch):
            raise RuntimeError(
                f"desync: {len(batch)} commands, {len(replies)} replies"
            )
        rep.batches += 1
        rep.ops += len(batch)
        rep.batch_latencies.append(t1 - t0)
        for op, reply in zip(batch, replies):
            verb = op[0].decode().lower()
            rep.verbs[verb] = rep.verbs.get(verb, 0) + 1
            rep.note_reply(reply)
        if max_ops is not None and rep.ops - ops_before >= max_ops:
            break
        if deadline is not None and t1 >= deadline:
            break
    rep.elapsed += time.perf_counter() - started
    return rep
