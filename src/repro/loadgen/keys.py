"""Key-choosing distributions: which key does the next operation touch?

Every chooser is a pure function of its parameters plus the
``random.Random`` instance the engine hands it — no hidden state, no
wall clock — so one seed reproduces one key sequence forever.

The Zipfian sampler is the YCSB / Gray et al. ("Quickly Generating
Billion-Record Synthetic Databases") constant-time rejection form:
an O(n) zeta precomputation once, then O(1) per sample. Rank 0 is the
hottest key; ``p(rank) ∝ 1 / (rank+1)^theta``. The scrambled variant
hashes ranks through FNV-1a so the hot keys spread across the key
space (and therefore across cluster hash slots) instead of clumping at
the low ids.
"""

from __future__ import annotations

import random

__all__ = [
    "HotKeyChooser",
    "KeyChooser",
    "LatestChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "ZipfianChooser",
    "zeta",
]

#: zeta sums are O(n); memoized so every stream over the same keyspace
#: shares one precomputation
_ZETA_CACHE: dict[tuple[int, float], float] = {}

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def zeta(n: int, theta: float) -> float:
    """``sum_{i=1..n} 1/i^theta`` (the generalized harmonic number)."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        if len(_ZETA_CACHE) > 64:
            _ZETA_CACHE.clear()
        _ZETA_CACHE[key] = cached
    return cached


def fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value``."""
    digest = _FNV_OFFSET
    for _ in range(8):
        digest ^= value & 0xFF
        digest = (digest * _FNV_PRIME) & _MASK64
        value >>= 8
    return digest


class KeyChooser:
    """One key id in ``[0, space)`` per :meth:`choose` call."""

    def __init__(self, space: int) -> None:
        if space <= 0:
            raise ValueError(f"key space must be positive, got {space}")
        self.space = space

    def choose(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformChooser(KeyChooser):
    """Every key equally likely — the baseline the skews are against."""

    def choose(self, rng: random.Random) -> int:
        return rng.randrange(self.space)


class ZipfianChooser(KeyChooser):
    """YCSB-style Zipfian over ranks ``0..space-1`` (0 hottest)."""

    def __init__(self, space: int, theta: float = 0.99) -> None:
        super().__init__(space)
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.theta = theta
        self._zetan = zeta(space, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if space > 2:
            zeta2 = zeta(2, theta)
            self._eta = (1.0 - (2.0 / space) ** (1.0 - theta)) / (
                1.0 - zeta2 / self._zetan
            )
        else:
            # space <= 2: choose() resolves entirely through the rank-0
            # and rank-1 thresholds below (u*zetan < 1 + 0.5^theta
            # always), and the eta formula divides by zero at space=2
            self._eta = 0.0
        self._half_pow = 1.0 + 0.5 ** theta

    def rank_probability(self, rank: int) -> float:
        """Exact ``P(rank)`` — monotonically decreasing in ``rank``."""
        return (1.0 / (rank + 1) ** self.theta) / self._zetan

    def choose(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._half_pow:
            return 1
        rank = int(self.space * (self._eta * u - self._eta + 1.0)
                   ** self._alpha)
        return min(rank, self.space - 1)


class ScrambledZipfianChooser(ZipfianChooser):
    """Zipfian popularity, hot ranks scattered across the id space."""

    def choose(self, rng: random.Random) -> int:
        return fnv1a_64(super().choose(rng)) % self.space


class HotKeyChooser(KeyChooser):
    """A hot set gets most of the traffic (YCSB ``hotspot``).

    ``hot_fraction`` of the key space receives ``hot_weight`` of the
    operations; both hot and cold halves are uniform internally.
    """

    def __init__(
        self,
        space: int,
        hot_fraction: float = 0.1,
        hot_weight: float = 0.9,
    ) -> None:
        super().__init__(space)
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of (0,1]: {hot_fraction}")
        if not 0.0 <= hot_weight <= 1.0:
            raise ValueError(f"hot_weight out of [0,1]: {hot_weight}")
        self.hot_fraction = hot_fraction
        self.hot_weight = hot_weight
        self._hot_count = max(1, int(space * hot_fraction))

    def choose(self, rng: random.Random) -> int:
        if rng.random() < self.hot_weight:
            return rng.randrange(self._hot_count)
        if self._hot_count >= self.space:
            return rng.randrange(self.space)
        return rng.randrange(self._hot_count, self.space)


class LatestChooser(KeyChooser):
    """Recently-inserted keys are hottest (YCSB workload D).

    The engine advances :attr:`horizon` as it inserts; a Zipfian rank
    is drawn over the *current* horizon and subtracted from the newest
    id, so key ``horizon-1`` (the latest insert) is the hottest.
    """

    def __init__(self, space: int, theta: float = 0.99) -> None:
        super().__init__(space)
        self.theta = theta
        self.horizon = space  # pre-loaded keys count as inserted
        self._zipf = ZipfianChooser(space, theta)

    def note_insert(self, key_id: int) -> None:
        if key_id >= self.horizon:
            self.horizon = min(key_id + 1, self.space)

    def choose(self, rng: random.Random) -> int:
        rank = self._zipf.choose(rng)
        if rank >= self.horizon:
            rank = rank % self.horizon
        return self.horizon - 1 - rank
