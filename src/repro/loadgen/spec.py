"""Workload specifications and the named preset table.

A :class:`WorkloadSpec` is a *complete, serializable* description of a
workload: key space and distribution, value sizes, the operation mix,
TTL churn, multi-key shapes, and the pipeline-depth mix. Spec + seed
fully determine an operation stream (see
:class:`~repro.loadgen.engine.OperationStream`), which is what makes
traces replayable and benchmark cells reproducible.

Presets follow the YCSB core workloads A–F, translated to RESP verbs:

========  =============================================  ==============
preset    mix                                            distribution
========  =============================================  ==============
ycsb-a    50% GET / 50% SET                              zipfian
ycsb-b    95% GET / 5% SET                               zipfian
ycsb-c    100% GET                                       zipfian
ycsb-d    95% GET / 5% insert (new keys)                 latest
ycsb-e    95% MGET run-scan / 5% insert                  zipfian start
ycsb-f    50% GET / 50% read-modify-write (GET then SET) zipfian
========  =============================================  ==============

plus cache-shaped extras: ``hot-key`` (10% of keys take 90% of
traffic), ``uniform`` (the old synthetic driver, kept as the control),
``ttl-churn`` (expiring writes + explicit EXPIRE), and ``write-heavy``
(90% lognormal-sized SETs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.loadgen.keys import (
    HotKeyChooser,
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.loadgen.values import (
    FixedSizer,
    LognormalSizer,
    UniformSizer,
    ValueSizer,
)

__all__ = ["PRESETS", "WorkloadSpec", "preset"]

#: operation verbs a mix may name (see OperationStream for semantics)
VERBS = (
    "get", "set", "del", "incr", "mget", "mset", "scan", "rmw",
    "expire", "insert",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines a workload except the seed."""

    name: str
    #: distinct keys the stream addresses
    keyspace: int = 8192
    #: zipfian | scrambled-zipfian | uniform | hotkey | latest
    key_dist: str = "zipfian"
    zipf_theta: float = 0.99
    hot_fraction: float = 0.1
    hot_weight: float = 0.9
    #: fixed | uniform | lognormal
    value_dist: str = "fixed"
    value_size: int = 128          # fixed size / lognormal median
    value_lo: int = 16             # uniform low / lognormal clamp low
    value_hi: int = 2048           # uniform high / lognormal clamp high
    value_sigma: float = 1.0       # lognormal shape
    #: fraction of each value that is a repeated (compressible) fill
    #: byte; 1.0 = the historical single-byte payload, 0.0 = pure RNG
    #: bytes (incompressible) — the tier benchmark's sweep axis
    compressibility: float = 1.0
    #: (verb, weight) pairs; weights need not sum to 1
    mix: tuple[tuple[str, float], ...] = (("get", 0.5), ("set", 0.5))
    #: fraction of SET/MSET writes that carry an EX ttl
    ttl_fraction: float = 0.0
    ttl_lo: int = 1
    ttl_hi: int = 60
    #: keys per MGET/MSET/scan run
    multi_keys: int = 4
    #: group keys as ``{g<id>}:...`` so multi-key runs share a cluster
    #: hash slot (False → sequential runs cross slots: CROSSSLOT food)
    hash_tags: bool = False
    #: (pipeline depth, weight) pairs — the per-batch depth mix
    depths: tuple[tuple[int, float], ...] = ((16, 1.0),)
    key_prefix: str = "user"

    def __post_init__(self) -> None:
        if self.keyspace < 1:
            raise ValueError(f"keyspace must be >= 1, got {self.keyspace}")
        if not self.mix:
            raise ValueError("mix must name at least one verb")
        for verb, weight in self.mix:
            if verb not in VERBS:
                raise ValueError(f"unknown verb {verb!r} (know {VERBS})")
            if weight < 0:
                raise ValueError(f"negative weight for {verb!r}")
        if sum(weight for _, weight in self.mix) <= 0:
            raise ValueError("mix weights sum to zero")
        if not self.depths:
            raise ValueError("depths must name at least one depth")
        for depth, weight in self.depths:
            if depth < 1:
                raise ValueError(f"pipeline depth must be >= 1: {depth}")
            if weight < 0:
                raise ValueError(f"negative weight for depth {depth}")
        if not 0.0 <= self.ttl_fraction <= 1.0:
            raise ValueError(f"ttl_fraction out of [0,1]: {self.ttl_fraction}")
        if not 1 <= self.ttl_lo <= self.ttl_hi:
            raise ValueError(
                f"need 1 <= ttl_lo <= ttl_hi, got [{self.ttl_lo}, "
                f"{self.ttl_hi}]"
            )
        if self.multi_keys < 1:
            raise ValueError(f"multi_keys must be >= 1: {self.multi_keys}")
        if not 0.0 <= self.compressibility <= 1.0:
            raise ValueError(
                f"compressibility out of [0,1]: {self.compressibility}"
            )

    # -- factories ------------------------------------------------------

    def make_key_chooser(self) -> KeyChooser:
        if self.key_dist == "zipfian":
            return ZipfianChooser(self.keyspace, self.zipf_theta)
        if self.key_dist == "scrambled-zipfian":
            return ScrambledZipfianChooser(self.keyspace, self.zipf_theta)
        if self.key_dist == "uniform":
            return UniformChooser(self.keyspace)
        if self.key_dist == "hotkey":
            return HotKeyChooser(
                self.keyspace, self.hot_fraction, self.hot_weight
            )
        if self.key_dist == "latest":
            return LatestChooser(self.keyspace, self.zipf_theta)
        raise ValueError(f"unknown key distribution {self.key_dist!r}")

    def make_value_sizer(self) -> ValueSizer:
        if self.value_dist == "fixed":
            return FixedSizer(self.value_size)
        if self.value_dist == "uniform":
            return UniformSizer(self.value_lo, self.value_hi)
        if self.value_dist == "lognormal":
            return LognormalSizer(
                self.value_size, self.value_sigma,
                self.value_lo, self.value_hi,
            )
        raise ValueError(f"unknown value distribution {self.value_dist!r}")

    # -- serialization (trace headers, bench JSON) ----------------------

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["mix"] = [list(pair) for pair in self.mix]
        doc["depths"] = [list(pair) for pair in self.depths]
        if self.compressibility == 1.0:
            # the stream RNG is seeded from this dict: omitting the
            # default keeps every pre-knob trace digest byte-identical
            del doc["compressibility"]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkloadSpec":
        doc = dict(doc)
        doc["mix"] = tuple(
            (verb, float(weight)) for verb, weight in doc["mix"]
        )
        doc["depths"] = tuple(
            (int(depth), float(weight)) for depth, weight in doc["depths"]
        )
        return cls(**doc)


PRESETS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="ycsb-a",
            mix=(("get", 0.5), ("set", 0.5)),
        ),
        WorkloadSpec(
            name="ycsb-b",
            mix=(("get", 0.95), ("set", 0.05)),
        ),
        WorkloadSpec(
            name="ycsb-c",
            mix=(("get", 1.0),),
        ),
        WorkloadSpec(
            name="ycsb-d",
            key_dist="latest",
            mix=(("get", 0.95), ("insert", 0.05)),
        ),
        WorkloadSpec(
            name="ycsb-e",
            mix=(("scan", 0.95), ("insert", 0.05)),
            multi_keys=8,
            hash_tags=True,
        ),
        WorkloadSpec(
            name="ycsb-f",
            mix=(("get", 0.5), ("rmw", 0.5)),
        ),
        WorkloadSpec(
            name="hot-key",
            key_dist="hotkey",
            mix=(("get", 0.9), ("set", 0.1)),
        ),
        WorkloadSpec(
            name="uniform",
            key_dist="uniform",
            mix=(("get", 0.5), ("set", 0.5)),
        ),
        WorkloadSpec(
            name="ttl-churn",
            mix=(("get", 0.2), ("set", 0.6), ("expire", 0.2)),
            ttl_fraction=0.8,
            ttl_lo=1,
            ttl_hi=30,
            depths=((1, 0.2), (8, 0.3), (16, 0.5)),
        ),
        WorkloadSpec(
            name="write-heavy",
            mix=(("get", 0.1), ("set", 0.9)),
            value_dist="lognormal",
            value_size=256,
            value_lo=16,
            value_hi=8192,
        ),
    )
}


def preset(name: str, **overrides: object) -> WorkloadSpec:
    """A named preset, optionally with field overrides applied."""
    try:
        spec = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {name!r} (know: {known})") from None
    return replace(spec, **overrides) if overrides else spec
