"""Value-size distributions and deterministic payload synthesis.

Real caches do not store 100-byte values uniformly: CDN objects are
lognormal, session blobs cluster at a fixed size, counters are tiny.
A sizer turns the stream's RNG into a byte count; ``payload`` turns
(size, rng) into the actual bytes — a single random byte repeated, so
values are cheap to build, compress realistically badly, and are a
pure function of the stream state (byte-identical replay).
"""

from __future__ import annotations

import math
import random

__all__ = [
    "FixedSizer",
    "LognormalSizer",
    "UniformSizer",
    "ValueSizer",
    "payload",
]


class ValueSizer:
    """One value size (bytes) per :meth:`size` call.

    ``lo``/``hi`` are the declared bounds every sample must respect —
    the property tests assert them, and the engine reports them in the
    trace header so a replayer can pre-size buffers.
    """

    lo: int
    hi: int

    def size(self, rng: random.Random) -> int:
        raise NotImplementedError


class FixedSizer(ValueSizer):
    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"value size must be >= 1, got {size}")
        self.lo = self.hi = size

    def size(self, rng: random.Random) -> int:
        return self.lo


class UniformSizer(ValueSizer):
    def __init__(self, lo: int, hi: int) -> None:
        if not 1 <= lo <= hi:
            raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def size(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


class LognormalSizer(ValueSizer):
    """Lognormal around ``median`` with shape ``sigma``, clamped.

    The clamp bounds are part of the distribution's contract (and the
    trace header), not a hidden safety net: tails past ``hi`` all land
    exactly on ``hi``.
    """

    def __init__(
        self, median: int, sigma: float = 1.0, lo: int = 1,
        hi: int | None = None,
    ) -> None:
        if median < 1:
            raise ValueError(f"median must be >= 1, got {median}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.median = median
        self.sigma = sigma
        self.lo = max(1, lo)
        self.hi = hi if hi is not None else median * 64
        if self.lo > self.hi:
            raise ValueError(f"empty clamp range [{self.lo}, {self.hi}]")
        self._mu = math.log(median)

    def size(self, rng: random.Random) -> int:
        sample = int(round(rng.lognormvariate(self._mu, self.sigma)))
        return min(self.hi, max(self.lo, sample))


def payload(
    size: int, rng: random.Random, compressibility: float = 1.0
) -> bytes:
    """``size`` bytes, content drawn from the stream RNG.

    At the default ``compressibility=1.0`` the value is one random byte
    repeated: O(1) RNG cost, deterministic, and visibly distinct
    between writes of the same key often enough for debugging.  Lower
    settings replace a ``1 - compressibility`` prefix with RNG bytes
    (``0.0`` = fully random, incompressible), sweeping how well the
    second-chance tier's zlib pass can do.  Exactly one ``randrange``
    is always consumed for the fill byte first, so the 1.0 path is
    byte-identical to the historical generator and every committed
    stream digest is preserved.
    """
    if not 0.0 <= compressibility <= 1.0:
        raise ValueError(
            f"compressibility out of [0,1]: {compressibility}"
        )
    fill = bytes([rng.randrange(256)])
    if compressibility >= 1.0:
        return fill * size
    n_random = min(size, round(size * (1.0 - compressibility)))
    return rng.randbytes(n_random) + fill * (size - n_random)
