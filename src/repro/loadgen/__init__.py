"""Trace-driven workload engine for the kvstore serving planes.

One uniform GET/SET driver is not "millions of users". This package
generates *deterministic, seedable* operation streams shaped like real
cache traffic — Zipfian and hot-key skew, value-size distributions,
TTL churn, pipeline-depth mixes, YCSB-style A–F presets — and can
record any stream to a replayable trace file (record → replay is
byte-identical).

Layout:

* :mod:`repro.loadgen.keys`   — key-choosing distributions;
* :mod:`repro.loadgen.values` — value-size distributions;
* :mod:`repro.loadgen.spec`   — :class:`WorkloadSpec` + named presets;
* :mod:`repro.loadgen.engine` — :class:`OperationStream` (spec+seed →
  the op/batch stream);
* :mod:`repro.loadgen.trace`  — trace record/replay (RESP-framed);
* :mod:`repro.loadgen.driver` — drive a stream against any client with
  ``execute_pipeline`` and measure it.

The CLI lives at ``python -m repro.tools.loadgen``; the scenario-matrix
runner built on top is ``benchmarks/bench_scenarios.py``.
"""

from repro.loadgen.driver import DriverReport, drive
from repro.loadgen.engine import OperationStream
from repro.loadgen.spec import PRESETS, WorkloadSpec, preset
from repro.loadgen.trace import read_trace, record_trace

__all__ = [
    "DriverReport",
    "OperationStream",
    "PRESETS",
    "WorkloadSpec",
    "drive",
    "preset",
    "read_trace",
    "record_trace",
]
