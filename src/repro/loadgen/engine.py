"""The operation stream: spec + seed → deterministic RESP commands.

:class:`OperationStream` turns a :class:`~repro.loadgen.spec.WorkloadSpec`
and an integer seed into an endless sequence of parsed-command tuples
(``(b"SET", b"user:00000042", b"xx...")``) grouped into pipeline
batches. The stream is a pure function of (spec, seed):

* the RNG is ``random.Random(f"{spec_json}:{seed}")`` — string seeds
  hash through SHA-512 in CPython, so the sequence is stable across
  processes and ``PYTHONHASHSEED`` values;
* no wall clock, no I/O — two streams built from the same (spec, seed)
  yield byte-identical operations forever (asserted by the property
  tests and the scenario matrix's per-cell stream digest).

Verb semantics (the YCSB translation):

``get``     GET of a chosen key.
``set``     SET of a chosen key; carries ``EX ttl`` for a
            ``ttl_fraction`` of writes.
``insert``  SET of the *next unwritten* key id (wraps around the key
            space); advances the ``latest`` distribution's horizon.
``del``     DEL of a chosen key.
``incr``    INCR of a per-stream counter key (small integer churn).
``rmw``     read-modify-write: GET then SET of the same key — two
            operations in the same batch (YCSB F).
``mget``    MGET of a sequential key run starting at a chosen key.
``scan``    alias for ``mget`` (YCSB E's scan over a run).
``mset``    MSET over a sequential key run.
``expire``  EXPIRE of a chosen key with a sampled ttl.

Sequential runs (`mget`/`scan`/`mset`) stay inside one key *group* when
``spec.hash_tags`` is set: keys format as ``{<prefix>.g<gid>}:<id>`` so
the whole run shares a cluster hash slot. Without tags the run crosses
slot boundaries — exactly the shape that must surface CROSSSLOT errors
from a cluster shard.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from typing import Iterator

from repro.loadgen.keys import LatestChooser
from repro.loadgen.spec import WorkloadSpec
from repro.loadgen.values import payload

__all__ = ["Op", "OperationStream", "stream_digest"]

#: one parsed command: a tuple of bytes argv
Op = tuple[bytes, ...]


class OperationStream:
    """Deterministic generator of operation batches for one workload."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        material = json.dumps(spec.to_dict(), sort_keys=True)
        self.rng = random.Random(f"{material}:{seed}")
        self._keys = spec.make_key_chooser()
        self._sizer = spec.make_value_sizer()
        verbs, weights = zip(*spec.mix)
        self._verbs = verbs
        self._verb_weights = list(itertools.accumulate(weights))
        depths, dweights = zip(*spec.depths)
        self._depths = depths
        self._depth_weights = list(itertools.accumulate(dweights))
        self._next_insert = spec.keyspace  # wraps modulo keyspace
        self._counter_keys = max(1, min(16, spec.keyspace // 64))
        self.ops_generated = 0

    # -- key formatting -------------------------------------------------

    def key(self, key_id: int) -> bytes:
        """Wire bytes for one key id (stable across the stream)."""
        spec = self.spec
        if spec.hash_tags:
            gid = key_id // spec.multi_keys
            return (
                f"{{{spec.key_prefix}.g{gid}}}:{key_id:08d}".encode()
            )
        return f"{spec.key_prefix}:{key_id:08d}".encode()

    def _run_keys(self, start_id: int) -> list[bytes]:
        """A sequential run of ``multi_keys`` keys starting at start_id.

        With hash tags the run is aligned to its group so every key
        shares one tag (one slot); without tags it may cross slots.
        """
        spec = self.spec
        count = spec.multi_keys
        if spec.hash_tags:
            start_id = (start_id // count) * count
        return [
            self.key((start_id + i) % spec.keyspace) for i in range(count)
        ]

    # -- op synthesis ---------------------------------------------------

    def _value(self) -> bytes:
        size = self._sizer.size(self.rng)
        return payload(size, self.rng, self.spec.compressibility)

    def _maybe_ttl(self) -> tuple[bytes, ...]:
        spec = self.spec
        if spec.ttl_fraction and self.rng.random() < spec.ttl_fraction:
            ttl = self.rng.randint(spec.ttl_lo, spec.ttl_hi)
            return (b"EX", b"%d" % ttl)
        return ()

    def _emit(self, verb: str, out: list[Op]) -> None:
        rng = self.rng
        keys = self._keys
        if verb == "get":
            out.append((b"GET", self.key(keys.choose(rng))))
        elif verb == "set":
            out.append(
                (b"SET", self.key(keys.choose(rng)), self._value())
                + self._maybe_ttl()
            )
        elif verb == "insert":
            key_id = self._next_insert % self.spec.keyspace
            self._next_insert += 1
            if isinstance(keys, LatestChooser):
                keys.note_insert(key_id)
            out.append(
                (b"SET", self.key(key_id), self._value())
                + self._maybe_ttl()
            )
        elif verb == "del":
            out.append((b"DEL", self.key(keys.choose(rng))))
        elif verb == "incr":
            out.append(
                (b"INCR", b"%s:ctr:%d" % (
                    self.spec.key_prefix.encode(),
                    rng.randrange(self._counter_keys),
                ))
            )
        elif verb == "rmw":
            key = self.key(keys.choose(rng))
            out.append((b"GET", key))
            out.append((b"SET", key, self._value()) + self._maybe_ttl())
        elif verb in ("mget", "scan"):
            out.append(
                (b"MGET", *self._run_keys(keys.choose(rng)))
            )
        elif verb == "mset":
            pairs: list[bytes] = []
            for key in self._run_keys(keys.choose(rng)):
                pairs.append(key)
                pairs.append(self._value())
            out.append((b"MSET", *pairs))
        elif verb == "expire":
            ttl = rng.randint(self.spec.ttl_lo, self.spec.ttl_hi)
            out.append(
                (b"EXPIRE", self.key(keys.choose(rng)), b"%d" % ttl)
            )
        else:  # pragma: no cover - spec validation rejects these
            raise ValueError(f"unknown verb {verb!r}")

    def _pick(self, cumulative: list[float], choices: tuple) -> object:
        point = self.rng.random() * cumulative[-1]
        for weight, choice in zip(cumulative, choices):
            if point < weight:
                return choice
        return choices[-1]

    # -- the stream -----------------------------------------------------

    def batches(self) -> Iterator[list[Op]]:
        """Endless pipeline batches, depth drawn from the depth mix.

        ``rmw`` emits two ops, so a batch may exceed its drawn depth by
        at most one op — the depth is a floor, not an exact count.
        """
        while True:
            depth = self._pick(self._depth_weights, self._depths)
            batch: list[Op] = []
            while len(batch) < depth:
                verb = self._pick(self._verb_weights, self._verbs)
                self._emit(verb, batch)
            self.ops_generated += len(batch)
            yield batch

    def ops(self) -> Iterator[Op]:
        """The same stream flattened to single operations."""
        for batch in self.batches():
            yield from batch

    def prefill_batches(self, batch_size: int = 64) -> Iterator[list[Op]]:
        """The YCSB load phase: one SET per key id, in id order.

        Deterministic like everything else (value bytes come from the
        stream RNG), so a prefilled store's contents are a function of
        (spec, seed) too. Intended to run *before* :meth:`batches`.
        """
        batch: list[Op] = []
        for key_id in range(self.spec.keyspace):
            batch.append((b"SET", self.key(key_id), self._value()))
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


def stream_digest(
    spec: WorkloadSpec, seed: int, op_count: int = 2048
) -> str:
    """SHA-256 over the first ``op_count`` encoded operations.

    Two runs that report the same digest generated byte-identical
    operation streams — the determinism receipt the scenario matrix
    commits per cell and CI re-derives.
    """
    from repro.kvstore.resp import encode_command

    stream = OperationStream(spec, seed)
    digest = hashlib.sha256()
    for op in itertools.islice(stream.ops(), op_count):
        digest.update(encode_command(*op))
    return digest.hexdigest()
