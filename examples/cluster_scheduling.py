"""Cluster-level effect of soft memory (paper section 2).

Runs the same synthetic Borg-like trace through two worlds: one where
memory pressure kills low-priority jobs (wasting their completed work),
and one where caches are soft and pressure reclaims pages instead.

Run:  python examples/cluster_scheduling.py
"""

from repro.cluster import (
    ClusterConfig,
    ClusterSim,
    PressurePolicy,
    TraceConfig,
    synthetic_trace,
)


def run(policy: PressurePolicy, seed: int) -> dict:
    jobs = synthetic_trace(TraceConfig(job_count=200, seed=seed))
    sim = ClusterSim(
        jobs,
        ClusterConfig(
            policy=policy, machine_count=4, machine_capacity_pages=2048
        ),
    )
    return sim.run().row()


def main() -> None:
    header = (
        f"{'policy':<6} {'completed':>9} {'evictions':>9} "
        f"{'wasted cpu-s':>12} {'mean util':>9} {'turnaround':>10}"
    )
    print(header)
    print("-" * len(header))
    totals = {}
    for policy in (PressurePolicy.KILL, PressurePolicy.SOFT):
        rows = [run(policy, seed) for seed in (1, 2, 3)]
        agg = {
            "completed": sum(r["completed"] for r in rows),
            "evictions": sum(r["evictions"] for r in rows),
            "wasted": sum(r["wasted_cpu_s"] for r in rows),
            "util": sum(r["mean_util"] for r in rows) / len(rows),
            "turnaround": sum(r["mean_turnaround_s"] for r in rows) / len(rows),
        }
        totals[policy] = agg
        print(
            f"{policy.value:<6} {agg['completed']:>9} {agg['evictions']:>9} "
            f"{agg['wasted']:>12.0f} {agg['util']:>9.3f} "
            f"{agg['turnaround']:>10.1f}"
        )
    kill, soft = totals[PressurePolicy.KILL], totals[PressurePolicy.SOFT]
    print(
        f"\nsoft memory cut evictions by "
        f"{1 - soft['evictions'] / kill['evictions']:.0%} and wasted work by "
        f"{1 - soft['wasted'] / kill['wasted']:.0%}"
    )
    assert soft["evictions"] < kill["evictions"]
    assert soft["wasted"] < kill["wasted"]


if __name__ == "__main__":
    main()
