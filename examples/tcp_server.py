"""A soft-memory Redis over real TCP sockets.

Starts the store on a loopback port, drives it with concurrent RESP
clients like any Redis client would, then applies memory pressure while
requests are in flight. The reclaimed keys answer "not found" over the
wire; the server never stops serving.

Run:  python examples/tcp_server.py
"""

import threading

from repro import MIB
from repro.core.locking import LockedSoftMemoryAllocator
from repro.kvstore import DataStore, TcpKvClient, TcpKvServer


def main() -> None:
    sma = LockedSoftMemoryAllocator(name="redis-tcp")
    store = DataStore(sma)
    with TcpKvServer(store) as server:
        host, port = server.address
        print(f"serving RESP on {host}:{port}")

        # Concurrent clients fill the store over real sockets.
        def fill(tid: int, count: int) -> None:
            with TcpKvClient(server.address) as client:
                for i in range(count):
                    client.execute("SET", f"c{tid}:key:{i:05d}", "x" * 64)

        threads = [
            threading.Thread(target=fill, args=(t, 5000)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with TcpKvClient(server.address) as client:
            print(f"loaded {client.execute('DBSIZE')} keys "
                  f"({sma.soft_bytes / MIB:.2f} MiB soft) over "
                  f"{server.connections_served} connections")

            # Memory pressure arrives while the server is live.
            stats = sma.reclaim(sma.held_pages // 2)
            print(f"reclaimed {stats.pages_reclaimed} pages "
                  f"({stats.allocations_freed} entries dropped)")

            oldest = client.execute("GET", "c0:key:00000")
            print(f"GET oldest key over the wire -> {oldest!r}")
            client.execute("SET", "post-pressure", "still-serving")
            print(f"server still serving: "
                  f"{client.execute('GET', 'post-pressure')!r}")
            info = dict(
                line.split(":", 1)
                for line in client.execute("INFO").decode().splitlines()
                if ":" in line
            )
            print(f"INFO reclaimed_keys={info['reclaimed_keys']} "
                  f"keys={info['keys']}")
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
