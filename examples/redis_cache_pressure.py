"""The paper's section 5 experiment, end to end.

A Redis-like server holds 130 K key-value pairs (~10 MiB) in soft
memory on a machine with 20 MiB of soft capacity. Another process then
allocates 12 MiB, forcing the Soft Memory Daemon to reclaim from the
store. Reclaimed keys answer "not found" — in a caching deployment the
client re-fetches them from the database — and *neither process
crashes*.

Uses the shared scenario from ``repro.sim.scenarios`` (the exact same
code path the Figure 2 benchmark measures) and renders the footprint
timeline as text.

Run:  python examples/redis_cache_pressure.py
"""

from repro.kvstore import KvClient, KvServer
from repro.sim.scenarios import run_figure2
from repro.tools import render_timeline
from repro.util.units import MIB


def main() -> None:
    result = run_figure2()
    machine = result.machine

    print("-- footprint timeline (paper Figure 2) --")
    print(render_timeline(machine.log, ["redis", "other"]))

    print(f"\nmemory pressure hit at t={result.pressure_at:.2f}s; "
          f"reclamation took {result.reclaim_seconds:.2f}s "
          f"(paper: 3.75s)")
    print(f"redis relinquished {result.redis_gave_up_bytes / MIB:.2f} MiB "
          f"(paper: 2 MiB)")

    # Query the store over the wire protocol, like a client would.
    client = KvClient(KvServer(result.store))
    oldest = client.get("key:0000000")
    newest = client.get("key:0129999")
    print(f"GET oldest key -> {oldest!r} (reclaimed)")
    print(f"GET newest key -> {newest!r} (survived)")
    info = client.info()
    print(f"reclaimed_keys={info['reclaimed_keys']} "
          f"remaining={info['keys']}")

    assert oldest is None and newest is not None
    assert result.redis_process.alive and result.other_process.alive
    print("neither process crashed")


if __name__ == "__main__":
    main()
