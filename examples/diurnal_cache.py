"""Diurnal memory harvesting (paper section 2's key-value use-case).

"During nocturnal lulls in traffic, the web service can operate on a
much smaller cache footprint without harming tail latency. Redis can
put the cache in soft memory, so that when batch jobs in the datacenter
scale up at night, they can reclaim part of the cache memory. The cache
can be scaled back up during the day."

This example walks one simulated day in 2-hour steps: at night the
batch job's allocations pull pages out of the cache; by day the batch
job finishes, releases them, and the cache regrows.

Run:  python examples/diurnal_cache.py
"""

from repro import MIB, PAGE_SIZE, SmdConfig
from repro.daemon import SelectionConfig
from repro.kvstore import DataStore, StoreConfig
from repro.sds import SoftLinkedList
from repro.sim import DiurnalLoad, Machine, MachineConfig


def main() -> None:
    # allow_self_reclaim exercises a section 7 open question: when the
    # cache itself is the biggest soft memory user, letting the daemon
    # reclaim the requester's own *older* entries turns the cache into a
    # freshest-entries ring instead of denying its growth.
    machine = Machine(MachineConfig(
        total_memory_bytes=96 * MIB,
        soft_capacity_bytes=32 * MIB,
        smd=SmdConfig(selection=SelectionConfig(allow_self_reclaim=True)),
    ))
    web = machine.spawn("web-service", traditional_pages=1024)
    batch = machine.spawn("batch", traditional_pages=256)

    store = DataStore(web.sma, StoreConfig(time_fn=lambda: machine.clock.now))
    load = DiurnalLoad(peak_rps=1000, trough_rps=100)

    key_seq = 0
    batch_scratch = None
    hour = 3600.0
    print(f"{'hour':>4} {'load rps':>8} {'cache MiB':>9} "
          f"{'batch MiB':>9} {'phase':<8}")
    for step in range(13):  # one day, 2-hour steps, midnight to midnight
        t = step * 2 * hour
        machine.clock.advance_to(t)
        rate = load.rate(t)
        night = load.is_trough(t)
        if night:
            # Batch scales up: takes ~20 MiB of soft memory.
            if batch_scratch is None:
                batch_scratch = SoftLinkedList(
                    batch.sma, name=f"scratch@{step}",
                    element_size=PAGE_SIZE)
                for i in range((20 * MIB) // PAGE_SIZE):
                    batch_scratch.append(i)
        else:
            # Day: batch done; its memory returns to the pool and the
            # cache regrows from fresh traffic.
            if batch_scratch is not None:
                while batch_scratch:
                    batch_scratch.pop_front()
                batch.sma.return_excess()
                batch_scratch = None
            target_keys = int(rate * 60)  # cache scales with traffic
            for _ in range(target_keys):
                store.set(f"obj:{key_seq:08d}".encode(), b"x" * 64)
                key_seq += 1
        machine.sample_footprints()
        print(f"{int(t // hour):>4} {rate:>8.0f} "
              f"{web.sma.soft_bytes / MIB:>9.2f} "
              f"{batch.sma.soft_bytes / MIB:>9.2f} "
              f"{'night' if night else 'day':<8}")

    info = store.info()
    print(f"\ncache entries reclaimed overnight: {info['reclaimed_keys']}")
    print(f"daemon reclamation episodes: {machine.smd.reclamation_episodes}")
    print("the same physical pages served the cache by day "
          "and the batch job by night")
    assert info["reclaimed_keys"] > 0
    assert machine.smd.denials == 0


if __name__ == "__main__":
    main()
