"""ML training cache use-case (paper section 2).

A training job's input cache lives in soft memory. With idle machine
memory the cache grows and training speeds up; when a latency-critical
service needs the memory back, the daemon shrinks the cache and
training slows — but keeps running.

Run:  python examples/ml_training_cache.py
"""

from repro import MIB, PAGE_SIZE, PhysicalMemory, SoftLinkedList
from repro import SoftMemoryAllocator, SoftMemoryDaemon
from repro.mlcache import InformedCache, SyntheticDataset, TrainerConfig, TrainerSim


def main() -> None:
    dataset = SyntheticDataset(sample_count=5000, fetch_cost=2e-3)

    print("-- throughput vs cache size (warm epochs) --")
    for fraction in (0.0001, 0.25, 0.5, 0.75, 1.0):
        sma = SoftMemoryAllocator(name="trainer")
        cache = InformedCache(sma, dataset, target_fraction=fraction)
        trainer = TrainerSim(dataset, cache, TrainerConfig(epochs=2))
        warm = trainer.run()[-1]  # epoch 2: cache is populated
        print(f"cache={fraction:5.0%}  throughput={warm.throughput:7.0f} "
              f"samples/s  io-bound steps={warm.io_bound_steps}")

    print("\n-- reclamation mid-training --")
    physical = PhysicalMemory(256 * MIB)
    smd = SoftMemoryDaemon(soft_capacity_pages=(120 * MIB) // PAGE_SIZE)
    trainer_sma = SoftMemoryAllocator(name="trainer", physical=physical)
    service_sma = SoftMemoryAllocator(name="web-service", physical=physical)
    smd.register(trainer_sma, traditional_pages=1024)
    smd.register(service_sma, traditional_pages=4096)

    cache = InformedCache(trainer_sma, dataset, target_fraction=1.0)
    trainer = TrainerSim(dataset, cache, TrainerConfig())
    trainer.run_epoch(0)  # warms the cache
    before = trainer.run_epoch(1)
    print(f"warm epoch:      {before.throughput:7.0f} samples/s  "
          f"cache={cache.cached_samples} samples")

    # The web service scales up and takes most of the soft memory.
    surge = SoftLinkedList(service_sma, name="request-buffers",
                           element_size=PAGE_SIZE)
    for i in range((90 * MIB) // PAGE_SIZE):
        surge.append(i)

    after = trainer.run_epoch(2)
    print(f"after reclaim:   {after.throughput:7.0f} samples/s  "
          f"cache={cache.cached_samples} samples "
          f"(evicted {cache.evictions})")
    print("training slowed but was never killed; the service got its memory")
    assert after.throughput < before.throughput
    assert cache.evictions > 0


if __name__ == "__main__":
    main()
