"""The paper's deployment model: separate processes, one daemon.

Runs the Soft Memory Daemon behind a unix domain socket and two real
OS processes as clients. Process A (a cache) fills the machine's soft
region; process B then allocates, and the daemon's reclamation demands
cross the process boundary over the wire — exactly the topology of the
paper's Figure 1.

Run:  python examples/multiprocess_daemon.py
"""

import multiprocessing as mp
import os
import tempfile

from repro.core.locking import LockedSoftMemoryAllocator
from repro.rpc import RpcDaemonServer, SmaAgent
from repro.sds import SoftLinkedList
from repro.tools import smd_report
from repro.util.units import PAGE_SIZE


def process_a(socket_path, filled, release, report):
    """The cache service: fills the soft region, then serves demands."""
    sma = LockedSoftMemoryAllocator(name="cache-service",
                                    request_batch_pages=8)
    agent = SmaAgent.connect(socket_path, sma, traditional_pages=500)
    dropped = []
    cache = SoftLinkedList(sma, element_size=PAGE_SIZE,
                           callback=dropped.append)
    for i in range(100):
        cache.append(f"cached-{i}")
    filled.set()
    release.wait(timeout=30)  # keep serving demands meanwhile
    report.put({
        "pid": os.getpid(),
        "survivors": len(cache),
        "dropped": len(dropped),
        "demands_served": agent.demands_served,
    })
    agent.close()


def process_b(socket_path, report):
    """The batch job: allocates 30 pages, forcing remote reclamation."""
    sma = LockedSoftMemoryAllocator(name="batch-job", request_batch_pages=8)
    agent = SmaAgent.connect(socket_path, sma, traditional_pages=10)
    scratch = SoftLinkedList(sma, element_size=PAGE_SIZE)
    for i in range(30):
        scratch.append(i)
    report.put({"pid": os.getpid(), "held": sma.held_pages})
    agent.close()


def main() -> None:
    socket_path = os.path.join(tempfile.mkdtemp(), "smd.sock")
    with RpcDaemonServer(socket_path, soft_capacity_pages=100) as server:
        print(f"daemon listening on {socket_path}")
        filled, release = mp.Event(), mp.Event()
        reports: "mp.Queue" = mp.Queue()

        a = mp.Process(target=process_a,
                       args=(socket_path, filled, release, reports))
        a.start()
        filled.wait(timeout=30)
        print(f"process A (pid {a.pid}) filled the soft region: "
              f"{server.smd.assigned_pages}/100 pages assigned")

        b = mp.Process(target=process_b, args=(socket_path, reports))
        b.start()
        b.join(timeout=60)
        release.set()
        a.join(timeout=60)

        results = {r.pop("pid"): r for r in
                   (reports.get(timeout=10), reports.get(timeout=10))}
        a_result = results[a.pid]
        b_result = results[b.pid]
        print(f"process B (pid {b.pid}) now holds "
              f"{b_result['held']} pages")
        print(f"process A gave up {a_result['dropped']} cache entries "
              f"across {a_result['demands_served']} demand(s); "
              f"{a_result['survivors']} survive")
        print(f"daemon saw {server.smd.reclamation_episodes} reclamation "
              f"episode(s), {server.smd.denials} denials")
        print("(denials are opportunistic batched asks near the capacity "
              "edge; the SMA retries with its exact need, which was "
              "always met)")
        print()
        print(smd_report(server.smd))
        assert b_result["held"] >= 30
        assert a_result["dropped"] > 0
    print("\nmemory moved between real OS processes; nobody was killed")


if __name__ == "__main__":
    main()
