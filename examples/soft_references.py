"""Section 7 features tour: references, Saches, groups, and pinning.

The paper's open-questions section sketches four mechanisms this
library implements; this example exercises each:

1. tracked pointers — a `SoftPtr` dereference after reclamation raises
   instead of reading freed memory;
2. language integration — `SoftReference.get()` returns None (never
   raises) and a `ReferenceQueue` tells the app what was reclaimed;
   the `Sache` builds transparent recomputation on top;
3. composition — allocation groups reclaim entry+key+value atomically;
4. concurrency — a `DerefScope` pins a value against reclamation.

Run:  python examples/soft_references.py
"""

from repro import (
    DerefScope,
    ReclaimedMemoryError,
    ReferenceQueue,
    Sache,
    SoftLinkedList,
    SoftMemoryAllocator,
)


def main() -> None:
    sma = SoftMemoryAllocator(name="tour", request_batch_pages=1)

    # -- 1. tracked pointers ------------------------------------------
    ctx = sma.create_context("raw", priority=0)
    ptr = sma.soft_malloc(2048, ctx, payload={"rows": [1, 2, 3]})
    print("deref before reclaim:", ptr.deref())
    sma.reclaim_free(ptr)
    try:
        ptr.deref()
    except ReclaimedMemoryError as exc:
        print(f"deref after reclaim raises: {exc}")

    # -- 2. soft references + reference queue ---------------------------
    queue = ReferenceQueue()
    blobs = SoftLinkedList(sma, name="blobs", element_size=2048,
                           priority=5)  # more important than the sache
    refs = []
    for i in range(6):
        p = blobs.append(f"blob-{i}")
        refs.append(sma.soft_reference(p, queue=queue, tag=f"blob-{i}"))
    sma.reclaim(2)  # four oldest blobs die
    print("reference.get() after reclaim:",
          [r.get() for r in refs])
    print("reference queue delivered:",
          [r.tag for r in queue.drain()])

    # -- 2b. the Sache: reclamation becomes recomputation ----------------
    def expensive(key: int) -> str:
        return f"rendered-page-{key}"

    sache = Sache(sma, expensive, entry_size=2048)
    for i in range(8):
        sache.get(i)
    sma.reclaim(2)
    values = [sache.get(i) for i in range(8)]  # always answers
    print(f"sache answered all {len(values)} keys; "
          f"recomputations={sache.recomputations} (8 initial + 4 reclaimed)")

    # -- 3. allocation groups: composition-safe reclamation ---------------
    table = sma.create_context("table")
    entry = sma.soft_malloc(64, table, payload="entry-record")
    key = sma.soft_malloc(64, table, payload="key-bytes")
    value = sma.soft_malloc(64, table, payload="value-bytes")
    sma.groups.group(entry, key, value)
    sma.reclaim_free(key)  # reclaiming ANY member takes all three
    print("group after reclaiming one member:",
          entry.valid, key.valid, value.valid)

    # -- 4. pinning against reclamation ----------------------------------
    ctx4 = sma.create_context("pinned")
    precious = sma.soft_malloc(2048, ctx4, payload="do-not-drop")
    sma.soft_malloc(2048, ctx4, payload="expendable")

    def evict_unpinned(quota):
        for alloc in list(ctx4.heap.iter_oldest_first()):
            if ctx4.heap.free_page_count >= quota:
                break
            if not alloc.pinned:
                sma._reclaim_free_alloc(alloc)
        return ctx4.heap.free_page_count

    ctx4.reclaim_handler = evict_unpinned
    with DerefScope(precious) as (held,):
        sma.reclaim(sma.reclaimable_pages())
        print(f"under maximal reclamation, pinned value survived: {held!r}")
    assert precious.valid

    sma.check_invariants()
    print("all section 7 mechanisms behaved; ledgers consistent")


if __name__ == "__main__":
    main()
