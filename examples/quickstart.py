"""Quickstart: soft memory in 60 lines.

Two processes share a machine with 20 MiB of soft capacity. A cache
service fills soft memory; a batch job then asks for more than what is
free, and the daemon *moves* memory between them instead of killing
anyone — the core loop of the paper's Figure 1.

Run:  python examples/quickstart.py
"""

from repro import (
    MIB,
    PAGE_SIZE,
    PhysicalMemory,
    SoftLinkedList,
    SoftMemoryAllocator,
    SoftMemoryDaemon,
)


def main() -> None:
    # One machine: 64 MiB of RAM, 20 MiB of it usable as soft memory.
    physical = PhysicalMemory(64 * MIB)
    smd = SoftMemoryDaemon(soft_capacity_pages=(20 * MIB) // PAGE_SIZE)

    # Process A: a cache service. Its cache opts into soft memory.
    cache_sma = SoftMemoryAllocator(name="cache-service", physical=physical)
    smd.register(cache_sma, traditional_pages=512)

    dropped = []
    cache = SoftLinkedList(
        cache_sma,
        name="hot-cache",
        element_size=2048,
        callback=dropped.append,  # last-chance hook before entries vanish
    )
    for i in range(8000):  # ~16 MiB of cache
        cache.append(f"cached-object-{i}")
    print(f"cache service holds {cache_sma.soft_bytes / MIB:.1f} MiB soft")

    # Process B: a batch job that suddenly needs 12 MiB.
    batch_sma = SoftMemoryAllocator(name="batch-job", physical=physical)
    smd.register(batch_sma, traditional_pages=128)

    scratch = SoftLinkedList(batch_sma, name="scratch", element_size=4096)
    for i in range((12 * MIB) // 4096):
        scratch.append(i)  # daemon reclaims from the cache service

    print(f"batch job now holds   {batch_sma.soft_bytes / MIB:.1f} MiB soft")
    print(f"cache service now at  {cache_sma.soft_bytes / MIB:.1f} MiB soft")
    print(f"cache entries dropped via callback: {len(dropped)}")
    print(f"cache survivors: {len(cache)} (oldest were freed first)")
    print(f"daemon: {smd.requests} requests, {smd.denials} denials, "
          f"{smd.reclamation_episodes} reclamation episodes")
    assert smd.denials == 0, "nobody was denied and nobody was killed"


if __name__ == "__main__":
    main()
